package apps

import (
	"testing"
	"testing/quick"

	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
)

func TestHuffmanCanonicalSmall(t *testing.T) {
	codes, err := BuildCanonical(map[int]uint64{0: 10, 1: 5, 2: 2, 3: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrefixFree(codes, 16); err != nil {
		t.Fatal(err)
	}
	// Most frequent symbol gets the shortest code.
	if codes[0].Len > codes[3].Len {
		t.Fatalf("frequent symbol longer than rare one: %+v", codes)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	codes, err := BuildCanonical(map[int]uint64{7: 100}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if codes[7].Len != 1 {
		t.Fatalf("single symbol code length = %d, want 1", codes[7].Len)
	}
}

func TestHuffmanEmptyAndErrors(t *testing.T) {
	codes, err := BuildCanonical(map[int]uint64{}, 16)
	if err != nil || len(codes) != 0 {
		t.Fatalf("empty input: %v %v", codes, err)
	}
	if _, err := BuildCanonical(map[int]uint64{1: 1, 2: 1, 3: 1}, 1); err == nil {
		t.Fatal("3 symbols in 1-bit codes accepted")
	}
	if _, err := BuildCanonical(map[int]uint64{1: 1}, 0); err == nil {
		t.Fatal("maxLen 0 accepted")
	}
}

func TestHuffmanLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep unconstrained trees; the
	// limited build must still fit 16 bits.
	freqs := map[int]uint64{}
	a, b := uint64(1), uint64(1)
	for i := 0; i < 40; i++ {
		freqs[i] = a
		a, b = b, a+b
	}
	codes, err := BuildCanonical(freqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrefixFree(codes, 16); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanPrefixFreeQuick(t *testing.T) {
	check := func(raw []uint16) bool {
		freqs := map[int]uint64{}
		for i, f := range raw {
			if i >= 64 {
				break
			}
			freqs[i] = uint64(f)
		}
		codes, err := BuildCanonical(freqs, 16)
		if err != nil {
			// Only legitimate failure: more symbols than 16-bit codes can
			// hold, impossible at 64 symbols.
			return false
		}
		return ValidatePrefixFree(codes, 16) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestACDCTablesWellFormed(t *testing.T) {
	acCode, acLen, err := acCodes()
	if err != nil {
		t.Fatal(err)
	}
	codes := map[int]Code{}
	for sym := 0; sym < 256; sym++ {
		if acLen[sym] > 0 {
			codes[sym] = Code{Bits: uint32(acCode[sym]), Len: int(acLen[sym])}
		}
	}
	if err := ValidatePrefixFree(codes, 16); err != nil {
		t.Fatal(err)
	}
	// EOB, ZRL and every (run 0..15, size 1..10) symbol must have a code.
	if acLen[0x00] == 0 || acLen[0xF0] == 0 {
		t.Fatal("EOB/ZRL missing")
	}
	for run := 0; run <= 15; run++ {
		for size := 1; size <= 10; size++ {
			if acLen[run<<4|size] == 0 {
				t.Fatalf("missing AC code for run %d size %d", run, size)
			}
		}
	}
	dcCode, dcLen := dcCodes()
	dcm := map[int]Code{}
	for cat := 0; cat < 12; cat++ {
		dcm[cat] = Code{Bits: uint32(dcCode[cat]), Len: int(dcLen[cat])}
	}
	if err := ValidatePrefixFree(dcm, 9); err != nil {
		t.Fatal(err)
	}
	// Standard JPEG DC lengths.
	want := []int32{2, 3, 3, 3, 3, 3, 4, 5, 6, 7, 8, 9}
	for cat, l := range want {
		if dcLen[cat] != l {
			t.Errorf("DC cat %d length = %d, want %d", cat, dcLen[cat], l)
		}
	}
}

func TestTablesShapes(t *testing.T) {
	if got := len(dataBins()); got != 48 {
		t.Errorf("data bins = %d, want 48", got)
	}
	seen := map[int32]bool{}
	for _, b := range append(dataBins(), pilotBins()...) {
		if b == 0 {
			t.Error("DC bin used")
		}
		if seen[b] {
			t.Errorf("bin %d reused", b)
		}
		seen[b] = true
	}
	// Bit-reversal is an involutive permutation.
	br := bitrev64()
	for i, r := range br {
		if br[r] != int32(i) {
			t.Fatalf("bitrev not involutive at %d", i)
		}
	}
	// Twiddles: k=0 → (1,0) in Q14; k=16 → (0,1).
	twr, twi := twiddles()
	if twr[0] != 1<<14 || twi[0] != 0 {
		t.Errorf("W^0 = (%d,%d)", twr[0], twi[0])
	}
	if twr[16] != 0 || twi[16] != 1<<14 {
		t.Errorf("W^16 = (%d,%d), want (0,16384)", twr[16], twi[16])
	}
	// Zig-zag is a permutation of 0..63.
	zz := map[int32]bool{}
	for _, v := range zigzag {
		if v < 0 || v > 63 || zz[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		zz[v] = true
	}
	// DCT matrix: row 0 is the scaled constant basis.
	d := dctMatrixQ12()
	for j := 1; j < 8; j++ {
		if d[j] != d[0] {
			t.Fatalf("DCT row 0 not constant: %v", d[:8])
		}
	}
}

// compileApp lowers one of the generated sources and returns machine +
// flattened program for profiling runs.
func compileApp(t *testing.T, src, entry string) (*interp.Machine, *ir.Program) {
	t.Helper()
	prog, err := lower.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return interp.New(prog), prog
}

func TestOFDMMiniCMatchesReference(t *testing.T) {
	src := OFDMSource()
	m, _ := compileApp(t, src, OFDMEntry)
	bits := GenBits(OFDMTotalBits, 1)
	copy(m.Global(OFDMBitsArray), bits)
	if _, err := m.Run(OFDMEntry); err != nil {
		t.Fatalf("run: %v", err)
	}
	wantI, wantQ, err := OFDMReference(bits)
	if err != nil {
		t.Fatal(err)
	}
	gotI := m.Global(OFDMOutIArray)
	gotQ := m.Global(OFDMOutQArray)
	for i := range wantI {
		if gotI[i] != wantI[i] || gotQ[i] != wantQ[i] {
			t.Fatalf("sample %d: got (%d,%d), want (%d,%d)", i, gotI[i], gotQ[i], wantI[i], wantQ[i])
		}
	}
	// Output must not be all zero.
	nz := 0
	for _, v := range gotI {
		if v != 0 {
			nz++
		}
	}
	if nz < len(gotI)/4 {
		t.Fatalf("suspiciously sparse output: %d nonzero of %d", nz, len(gotI))
	}
}

func TestOFDMCyclicPrefixProperty(t *testing.T) {
	bits := GenBits(OFDMTotalBits, 99)
	outI, outQ, err := OFDMReference(bits)
	if err != nil {
		t.Fatal(err)
	}
	// For every symbol, the first CPLen samples equal the last CPLen of the
	// symbol body.
	for sym := 0; sym < OFDMSymbols; sym++ {
		base := sym * SymbolSamples
		for i := 0; i < CPLen; i++ {
			if outI[base+i] != outI[base+CPLen+FFTSize-CPLen+i] {
				t.Fatalf("sym %d: CP mismatch at %d (I)", sym, i)
			}
			if outQ[base+i] != outQ[base+CPLen+FFTSize-CPLen+i] {
				t.Fatalf("sym %d: CP mismatch at %d (Q)", sym, i)
			}
		}
	}
}

func TestOFDMImpulseDC(t *testing.T) {
	// All-zero bits still produce pilot energy; a quick sanity check that
	// the IFFT moves energy out of the pilot bins into time domain.
	bits := make([]int32, OFDMTotalBits)
	outI, _, err := OFDMReference(bits)
	if err != nil {
		t.Fatal(err)
	}
	var energy int64
	for _, v := range outI[:SymbolSamples] {
		energy += int64(v) * int64(v)
	}
	if energy == 0 {
		t.Fatal("no pilot energy in time domain")
	}
}

func TestJPEGMiniCMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-frame interpretation in -short mode")
	}
	src, err := JPEGSource()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := compileApp(t, src, JPEGEntry)
	img := GenImage(1)
	copy(m.Global(JPEGImageArray), img)
	if _, err := m.Run(JPEGEntry); err != nil {
		t.Fatalf("run: %v", err)
	}
	wantStream, wantBits, err := JPEGReference(img)
	if err != nil {
		t.Fatal(err)
	}
	gotBits := m.Global(JPEGStateArray)[0]
	if gotBits != wantBits {
		t.Fatalf("bit count: got %d, want %d", gotBits, wantBits)
	}
	gotStream := m.Global(JPEGStreamArray)
	words := int(wantBits+31) / 32
	for i := 0; i < words; i++ {
		if gotStream[i] != wantStream[i] {
			t.Fatalf("stream word %d: got %#x, want %#x", i, uint32(gotStream[i]), uint32(wantStream[i]))
		}
	}
	if wantBits == 0 {
		t.Fatal("empty bitstream")
	}
	// Compression sanity: the stream must be much smaller than raw 8-bit.
	if int(wantBits) >= ImagePixels*8 {
		t.Fatalf("no compression: %d bits for %d pixels", wantBits, ImagePixels)
	}
}

func TestJPEGFlatImageCompressesHard(t *testing.T) {
	img := make([]int32, ImagePixels)
	for i := range img {
		img[i] = 128
	}
	_, bits, err := JPEGReference(img)
	if err != nil {
		t.Fatal(err)
	}
	// A flat image is nearly all EOBs: a few bits per block.
	if int(bits) > BlocksPerIm*8 {
		t.Fatalf("flat image took %d bits (> %d)", bits, BlocksPerIm*8)
	}
}

func TestJPEGDCTEnergyLocalization(t *testing.T) {
	// A flat block through the reference pipeline must quantize to DC-only.
	img := make([]int32, ImagePixels)
	for i := range img {
		img[i] = 200
	}
	stream, bits, err := JPEGReference(img)
	if err != nil {
		t.Fatal(err)
	}
	_ = stream
	if bits == 0 {
		t.Fatal("no output")
	}
}

func TestGenerators(t *testing.T) {
	bits := GenBits(1000, 5)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("non-bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("bit bias: %d ones of 1000", ones)
	}
	img := GenImage(5)
	for i, v := range img {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of range: %d", i, v)
		}
	}
	// Determinism.
	img2 := GenImage(5)
	for i := range img {
		if img[i] != img2[i] {
			t.Fatal("GenImage not deterministic")
		}
	}
	if GenImage(6)[0] == img[0] && GenImage(6)[1] == img[1] && GenImage(6)[2] == img[2] {
		t.Log("warning: different seeds produced identical prefix")
	}
}

func TestSourcesLowerAndFlatten(t *testing.T) {
	src, err := JPEGSource()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, src, entry string }{
		{"ofdm", OFDMSource(), OFDMEntry},
		{"jpeg", src, JPEGEntry},
	} {
		prog, err := lower.LowerSource(tc.src)
		if err != nil {
			t.Fatalf("%s: lower: %v", tc.name, err)
		}
		flat, err := lower.Flatten(prog, tc.entry)
		if err != nil {
			t.Fatalf("%s: flatten: %v", tc.name, err)
		}
		fp := ir.NewProgram()
		fp.Globals = prog.Globals
		if err := fp.AddFunc(flat); err != nil {
			t.Fatal(err)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("%s: flattened invalid: %v", tc.name, err)
		}
		t.Logf("%s: %d basic blocks after flattening", tc.name, len(flat.Blocks))
		if len(flat.Blocks) < 10 {
			t.Errorf("%s: suspiciously few blocks (%d)", tc.name, len(flat.Blocks))
		}
	}
}
