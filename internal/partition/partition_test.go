package partition

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"hybridpart/internal/analysis"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
	"hybridpart/internal/platform"
)

// prepared bundles the flow inputs for one test program.
type prepared struct {
	prog  *ir.Program
	fn    *ir.Function
	rep   *analysis.Report
	edges []finegrain.EdgeFreq
}

// prepare lowers src, flattens entry, profiles it and analyzes it.
func prepare(t *testing.T, src, entry string, args ...interp.Arg) prepared {
	t.Helper()
	prog, err := lower.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	flat, err := lower.Flatten(prog, entry)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	fp := ir.NewProgram()
	fp.Globals = prog.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	m := interp.New(fp)
	prof := m.EnableProfile()
	if _, err := m.Run(entry, args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := analysis.Analyze(flat, prof.Counts[entry], analysis.DefaultWeights())
	var edges []finegrain.EdgeFreq
	for k, n := range prof.Edges[entry] {
		edges = append(edges, finegrain.EdgeFreq{From: k.From(), To: k.To(), N: n})
	}
	return prepared{prog: fp, fn: flat, rep: rep, edges: edges}
}

// run invokes the engine with the prepared inputs.
func (p prepared) run(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Edges = p.edges
	res, err := Partition(context.Background(), p.prog, p.fn, p.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// hotLoopSrc has one dominant multiply-heavy kernel plus cold code.
const hotLoopSrc = `
int data[2048];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < 2048; i++) { data[i] = i * 3 + 1; }
    for (i = 0; i < n; i++) {
        int j;
        for (j = 0; j < 2048; j++) {
            s += data[j] * j + (data[j] >> 2) * (j + 1) + (data[j] & j) * (j - 3)
               + ((data[j] << 1) ^ j) * (j + 7) + (data[j] | 5) * (j + 11)
               + (data[j] - j) * (j + 13);
        }
    }
    if (s < 0) { s = -s; }
    return s;
}`

func TestAllFPGAMeetsLooseConstraint(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(4))
	res := p.run(t, Config{Platform: platform.Paper(5000, 2), Constraint: 1 << 40})
	if !res.Met {
		t.Fatal("loose constraint not met")
	}
	if len(res.Moved) != 0 {
		t.Fatalf("moved %v despite timing already met (methodology must exit at step 2)", res.Moved)
	}
	if res.FinalCycles != res.InitialCycles {
		t.Fatalf("final %d != initial %d with no moves", res.FinalCycles, res.InitialCycles)
	}
}

func TestPartitioningAcceleratesHotKernel(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	plat := platform.Paper(1500, 2)
	all := p.run(t, Config{Platform: plat, Constraint: 1 << 40})
	constraint := all.InitialCycles * 6 / 10
	res := p.run(t, Config{Platform: plat, Constraint: constraint})
	if !res.Met {
		t.Fatalf("constraint %d not met: final %d (initial %d)", constraint, res.FinalCycles, res.InitialCycles)
	}
	if len(res.Moved) == 0 {
		t.Fatal("no kernels moved")
	}
	// The first move must be the top kernel of the analysis.
	if res.Moved[0] != p.rep.Kernels[0] {
		t.Fatalf("first move = b%d, want top kernel b%d", res.Moved[0], p.rep.Kernels[0])
	}
	if res.FinalCycles >= res.InitialCycles {
		t.Fatalf("no acceleration: %d >= %d", res.FinalCycles, res.InitialCycles)
	}
	// Eq. 2 decomposition must hold exactly.
	if res.TFPGA+res.TCoarse+res.TComm != res.FinalCycles {
		t.Fatalf("eq. 2 broken: %d + %d + %d != %d", res.TFPGA, res.TCoarse, res.TComm, res.FinalCycles)
	}
}

func TestUnsatisfiableConstraintReportsBestEffort(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	res := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1})
	if res.Met {
		t.Fatal("impossible constraint reported as met")
	}
	if len(res.Moved) == 0 {
		t.Fatal("engine should have tried every kernel")
	}
}

func TestMovesFollowAnalysisOrder(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	res := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1})
	// Moves must be a prefix-preserving subsequence of rep.Kernels.
	ki := 0
	for _, m := range res.Moved {
		found := false
		for ; ki < len(p.rep.Kernels); ki++ {
			if p.rep.Kernels[ki] == m {
				found = true
				ki++
				break
			}
		}
		if !found {
			t.Fatalf("move b%d out of analysis order %v", m, p.rep.Kernels)
		}
	}
}

func TestSmallerAreaNeverFaster(t *testing.T) {
	// The all-FPGA mapping at A_FPGA=1500 can never beat the one at 5000
	// (Tables 2-3 shape: more area, fewer cycles).
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	small := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1 << 40})
	big := p.run(t, Config{Platform: platform.Paper(5000, 2), Constraint: 1 << 40})
	if small.InitialCycles < big.InitialCycles {
		t.Fatalf("A_FPGA=1500 faster (%d) than 5000 (%d)", small.InitialCycles, big.InitialCycles)
	}
}

func TestMoreCGCsNeedFewerMoves(t *testing.T) {
	// Table 2 shape: with three CGCs the constraint is met after fewer (or
	// equal) moves than with two.
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	base := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1 << 40})
	constraint := base.InitialCycles * 55 / 100
	res2 := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: constraint})
	res3 := p.run(t, Config{Platform: platform.Paper(1500, 3), Constraint: constraint})
	if len(res3.Moved) > len(res2.Moved) {
		t.Fatalf("three CGCs needed more moves (%d) than two (%d)", len(res3.Moved), len(res2.Moved))
	}
	if !res3.Met && res2.Met {
		t.Fatal("three CGCs failed where two succeeded")
	}
}

func TestDivisionKernelIsUnmappable(t *testing.T) {
	src := `
int data[64];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) {
        int j;
        for (j = 1; j <= 64; j++) { s += data[j - 1] / j; }
    }
    return s;
}`
	p := prepare(t, src, "f", interp.Int(50))
	res := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1})
	if len(res.Unmappable) == 0 {
		t.Fatal("division kernel not reported as unmappable")
	}
	for _, u := range res.Unmappable {
		for _, m := range res.Moved {
			if u == m {
				t.Fatalf("b%d both moved and unmappable", u)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(2))
	if _, err := Partition(context.Background(), p.prog, p.fn, p.rep, Config{Platform: platform.Default(), Constraint: 0}); err == nil {
		t.Fatal("zero constraint accepted")
	}
	bad := platform.Default()
	bad.Fine.Area = -5
	if _, err := Partition(context.Background(), p.prog, p.fn, p.rep, Config{Platform: bad, Constraint: 100}); err == nil {
		t.Fatal("invalid platform accepted")
	}
	if _, err := Partition(context.Background(), p.prog, p.fn, &analysis.Report{}, Config{Platform: platform.Default(), Constraint: 100}); err == nil {
		t.Fatal("mismatched report accepted")
	}
}

func TestSkipNonImproving(t *testing.T) {
	// A tiny kernel whose communication overhead outweighs the speedup
	// must be skipped when SkipNonImproving is set.
	src := `
int data[4];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) { s += data[i & 3]; }
    return s;
}`
	p := prepare(t, src, "f", interp.Int(64))
	plat := platform.Paper(1500, 2)
	plat.Comm.SyncCycles = 10000 // absurd communication cost
	res := p.run(t, Config{Platform: plat, Constraint: 1, SkipNonImproving: true})
	if len(res.Moved) != 0 {
		t.Fatalf("moved %v despite prohibitive communication cost", res.Moved)
	}
	if len(res.Skipped) == 0 {
		t.Fatal("no kernels recorded as skipped")
	}
	// Without the flag the engine moves anyway (faithful to the paper).
	res2 := p.run(t, Config{Platform: plat, Constraint: 1})
	if len(res2.Moved) == 0 {
		t.Fatal("paper-faithful engine should move unconditionally")
	}
}

func TestLiveIOCounts(t *testing.T) {
	src := `
int data[16];
int f(int a, int b) {
    int s = 0;
    int i;
    for (i = 0; i < 16; i++) {
        s += data[i] * a + b;
    }
    return s;
}`
	p := prepare(t, src, "f", interp.Int(2), interp.Int(3))
	live := ComputeLiveIO(p.fn)
	// Find the loop body: the block with the multiply.
	var body ir.BlockID = -1
	for _, blk := range p.fn.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpMul {
				body = blk.ID
			}
		}
	}
	if body < 0 {
		t.Fatal("loop body not found")
	}
	io := live[body]
	// Live-ins include at least a, b, i, s; live-outs at least s and i
	// (loop-carried).
	if io.In < 4 {
		t.Errorf("live-in = %d, want >= 4", io.In)
	}
	if io.Out < 2 {
		t.Errorf("live-out = %d, want >= 2", io.Out)
	}
}

func TestMovingKernelReducesTFPGA(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	plat := platform.Paper(1500, 2)
	res := p.run(t, Config{Platform: plat, Constraint: 1, MaxMoves: 1})
	if len(res.Moved) != 1 {
		t.Fatalf("MaxMoves=1 moved %d kernels", len(res.Moved))
	}
	if res.TFPGA >= res.InitialCycles {
		t.Fatalf("t_FPGA did not shrink: %d >= %d", res.TFPGA, res.InitialCycles)
	}
	if res.TCoarse <= 0 {
		t.Fatal("no coarse-grain time after a move")
	}
}

func TestFormatTable(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(4))
	res := p.run(t, Config{Platform: platform.Paper(1500, 2), Constraint: 1})
	out := res.FormatTable()
	for _, want := range []string{"Initial cycles", "Cycles in CGC", "BB no. moved", "% cycles reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
}

func TestContextCancellationBetweenMoves(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(4))

	// Pre-cancelled: the engine must not start.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Partition(dead, p.prog, p.fn, p.rep,
		Config{Platform: platform.Default(), Constraint: 100}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// Cancelling from the OnMove hook stops the trajectory after that move.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	moves := 0
	_, err := Partition(ctx, p.prog, p.fn, p.rep, Config{
		Platform:   platform.Default(),
		Constraint: 1, // unreachable: would move every candidate
		Edges:      p.edges,
		OnMove: func(Move) {
			moves++
			cancelMid()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if moves != 1 {
		t.Fatalf("engine kept moving after cancellation: %d moves", moves)
	}

	// A nil context means context.Background().
	if _, err := Partition(nil, p.prog, p.fn, p.rep,
		Config{Platform: platform.Default(), Constraint: 1 << 60, Edges: p.edges}); err != nil {
		t.Fatalf("nil context rejected: %v", err)
	}
}

func TestOnMoveMatchesMoves(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(4))
	var hooked []Move
	cfg := Config{
		Platform:   platform.Default(),
		Constraint: 1,
		MaxMoves:   3,
		Edges:      p.edges,
		OnMove:     func(m Move) { hooked = append(hooked, m) },
	}
	res, err := Partition(context.Background(), p.prog, p.fn, p.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked) == 0 || !reflect.DeepEqual(hooked, res.Moves) {
		t.Fatalf("hook stream %v != recorded moves %v", hooked, res.Moves)
	}
}

// batchStub builds a SimCostBatch stub whose scores are computed per slate
// index, plus the SimCost fallback the config validator requires (it must
// never run while the batch hook is installed).
func batchStub(t *testing.T, score func(i int, moved []ir.BlockID) SimScore) (func(context.Context, [][]ir.BlockID) ([]SimScore, error), func(context.Context, []ir.BlockID) (int64, error), *[][]ir.BlockID) {
	t.Helper()
	var slates [][]ir.BlockID
	batch := func(ctx context.Context, cands [][]ir.BlockID) ([]SimScore, error) {
		slates = cands
		out := make([]SimScore, len(cands))
		for i, m := range cands {
			out[i] = score(i, m)
		}
		return out, nil
	}
	serial := func(ctx context.Context, moved []ir.BlockID) (int64, error) {
		t.Fatal("SimCost ran although SimCostBatch is installed (batch must take precedence)")
		return 0, nil
	}
	return batch, serial, &slates
}

// TestSimCostBatchPrecedenceAndSlate: with both hooks installed only the
// batch hook runs, and it receives every trajectory prefix in index order —
// slate entry i is exactly the first i moved blocks.
func TestSimCostBatchPrecedenceAndSlate(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	batch, serial, slates := batchStub(t, func(i int, moved []ir.BlockID) SimScore {
		return SimScore{Cycles: int64(1000 - i)} // strictly improving: full trajectory wins
	})
	res := p.run(t, Config{
		Platform: platform.Paper(5000, 2), Constraint: 1,
		Objective: ObjectiveSimulated, SimCost: serial, SimCostBatch: batch,
	})
	if len(*slates) < 2 {
		t.Fatalf("batch saw %d candidates, want the full prefix slate", len(*slates))
	}
	for i, moved := range *slates {
		if len(moved) != i {
			t.Fatalf("slate entry %d has %d moved blocks, want %d (prefixes in index order)", i, len(moved), i)
		}
	}
	if want := len(*slates) - 1; len(res.Moved) != want {
		t.Fatalf("strictly improving scores: moved %d blocks, want the full trajectory of %d", len(res.Moved), want)
	}
	if res.SimScored != len(*slates) {
		t.Fatalf("SimScored %d, want %d (every candidate scored, none pruned)", res.SimScored, len(*slates))
	}
	if res.SimulatedCycles != int64(1000-(len(*slates)-1)) {
		t.Fatalf("SimulatedCycles %d, want the winning score", res.SimulatedCycles)
	}
}

// TestSimCostBatchTieBreaksLowestIndex: when every candidate scores the
// same, the empty prefix (index 0) must win — the argmin tie-break is the
// lowest trajectory index, independent of how the batch was scheduled.
func TestSimCostBatchTieBreaksLowestIndex(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	batch, serial, _ := batchStub(t, func(i int, moved []ir.BlockID) SimScore {
		return SimScore{Cycles: 777}
	})
	res := p.run(t, Config{
		Platform: platform.Paper(5000, 2), Constraint: 1,
		Objective: ObjectiveSimulated, SimCost: serial, SimCostBatch: batch,
	})
	if len(res.Moved) != 0 {
		t.Fatalf("all-tied scores must keep the lowest-index prefix (no moves), got %v", res.Moved)
	}
	if res.SimulatedCycles != 777 {
		t.Fatalf("SimulatedCycles %d, want 777", res.SimulatedCycles)
	}
}

// TestSimCostBatchPrunedSkipped: pruned entries are skipped by selection
// and excluded from SimScored; pruning the would-be winner's rivals leaves
// the best scored candidate as argmin.
func TestSimCostBatchPrunedSkipped(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	batch, serial, slates := batchStub(t, func(i int, moved []ir.BlockID) SimScore {
		if i == 0 {
			return SimScore{Pruned: true} // prune the lowest index so it cannot win a tie
		}
		return SimScore{Cycles: int64(100 + i)} // index 1 is the minimum
	})
	res := p.run(t, Config{
		Platform: platform.Paper(5000, 2), Constraint: 1,
		Objective: ObjectiveSimulated, SimCost: serial, SimCostBatch: batch,
	})
	if len(res.Moved) != 1 {
		t.Fatalf("moved %v, want the 1-block prefix (index 1 is the cheapest scored candidate)", res.Moved)
	}
	if res.SimScored != len(*slates)-1 {
		t.Fatalf("SimScored %d, want %d (pruned candidates are not scored)", res.SimScored, len(*slates)-1)
	}
	if res.SimulatedCycles != 101 {
		t.Fatalf("SimulatedCycles %d, want 101", res.SimulatedCycles)
	}
}

// TestSimCostBatchAllPrunedErrors: a batch that prunes every candidate has
// violated its contract (the incumbent must be a real score) and the run
// must fail loudly instead of silently picking a pruned mapping.
func TestSimCostBatchAllPrunedErrors(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	batch, serial, _ := batchStub(t, func(i int, moved []ir.BlockID) SimScore {
		return SimScore{Pruned: true}
	})
	cfg := Config{
		Platform: platform.Paper(5000, 2), Constraint: 1,
		Objective: ObjectiveSimulated, SimCost: serial, SimCostBatch: batch,
	}
	cfg.Edges = p.edges
	_, err := Partition(context.Background(), p.prog, p.fn, p.rep, cfg)
	if err == nil || !strings.Contains(err.Error(), "pruned every candidate") {
		t.Fatalf("err = %v, want the all-pruned contract error", err)
	}
}

// TestSimCostBatchLengthMismatchErrors: a score slice that is not
// index-aligned with the slate is a contract violation, not a partial
// result.
func TestSimCostBatchLengthMismatchErrors(t *testing.T) {
	p := prepare(t, hotLoopSrc, "f", interp.Int(8))
	serial := func(ctx context.Context, moved []ir.BlockID) (int64, error) { return 1, nil }
	batch := func(ctx context.Context, cands [][]ir.BlockID) ([]SimScore, error) {
		return make([]SimScore, len(cands)+1), nil
	}
	cfg := Config{
		Platform: platform.Paper(5000, 2), Constraint: 1,
		Objective: ObjectiveSimulated, SimCost: serial, SimCostBatch: batch,
	}
	cfg.Edges = p.edges
	_, err := Partition(context.Background(), p.prog, p.fn, p.rep, cfg)
	if err == nil || !strings.Contains(err.Error(), "scores for") {
		t.Fatalf("err = %v, want the length-mismatch contract error", err)
	}
}
