package partition

import "hybridpart/internal/ir"

// LiveIO counts the scalar values a basic block exchanges with the rest of
// the application: In is the number of distinct registers read before any
// local definition (the block's live-ins), Out is the number of distinct
// locally defined registers observable outside one execution of the block —
// used by another block, by the block's own terminator (the branch decision
// returns to the sequencer), or loop-carried back into the block itself.
//
// When a kernel moves to the coarse-grain data-path these are exactly the
// words that must cross through the shared data memory on every invocation
// (arrays already live there), so t_comm scales with In+Out.
type LiveIO struct {
	In  int
	Out int
}

// ComputeLiveIO analyzes every block of f.
func ComputeLiveIO(f *ir.Function) []LiveIO {
	// usedIn[r] = set of blocks reading register r (instruction operands or
	// terminator condition/return value).
	usedIn := map[ir.RegID]map[ir.BlockID]bool{}
	note := func(o ir.Operand, b ir.BlockID) {
		if o.Kind != ir.OperandReg {
			return
		}
		set := usedIn[o.Reg]
		if set == nil {
			set = map[ir.BlockID]bool{}
			usedIn[o.Reg] = set
		}
		set[b] = true
	}
	var buf []ir.RegID
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			buf = b.Instrs[i].Uses(buf[:0])
			for _, r := range buf {
				note(ir.Reg(r), b.ID)
			}
		}
		switch b.Term.Kind {
		case ir.TermBranch:
			note(b.Term.Cond, b.ID)
		case ir.TermReturn:
			if b.Term.HasVal {
				note(b.Term.Val, b.ID)
			}
		}
	}

	out := make([]LiveIO, len(f.Blocks))
	for _, b := range f.Blocks {
		d := ir.BuildDFG(f, b)
		io := LiveIO{In: len(d.ExternalIn)}
		extIn := map[ir.RegID]bool{}
		for _, r := range d.ExternalIn {
			extIn[r] = true
		}
		seen := map[ir.RegID]bool{}
		termUses := map[ir.RegID]bool{}
		if b.Term.Kind == ir.TermBranch && b.Term.Cond.Kind == ir.OperandReg {
			termUses[b.Term.Cond.Reg] = true
		}
		if b.Term.Kind == ir.TermReturn && b.Term.HasVal && b.Term.Val.Kind == ir.OperandReg {
			termUses[b.Term.Val.Reg] = true
		}
		for _, r := range d.Defined {
			if seen[r] {
				continue
			}
			seen[r] = true
			live := termUses[r] || extIn[r] // terminator use or loop-carried
			if !live {
				for blockID := range usedIn[r] {
					if blockID != b.ID {
						live = true
						break
					}
				}
			}
			if live {
				io.Out++
			}
		}
		out[b.ID] = io
	}
	return out
}
