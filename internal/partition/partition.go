// Package partition implements the paper's partitioning engine (step 4 of
// Figure 2): kernels — the critical basic blocks ordered by the analysis
// step — move one by one from the fine-grain FPGA to the coarse-grain CGC
// data-path; after each move the total execution time
//
//	t_total = t_FPGA + t_coarse + t_comm        (eq. 2)
//
// is recomputed from the two mapping procedures (eqs. 3 and 4) and the
// shared-memory communication model, until the timing constraint is met.
// The fine-grain side is re-mapped after every move (Figure 2 iterates the
// "map to fine-grain hardware" box), using the packed temporal-partitioning
// model: the vacated area lets the remaining blocks share fewer
// configurations.
package partition

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"hybridpart/internal/analysis"
	"hybridpart/internal/coarsegrain"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/obs"
	"hybridpart/internal/platform"
)

// Config parameterizes one partitioning run.
type Config struct {
	// Platform characterizes both reconfigurable fabrics (Figure 1).
	Platform platform.Platform
	// Constraint is the timing constraint in FPGA clock cycles ("the clock
	// cycle period is set to the clock period of the fine-grain hardware").
	Constraint int64
	// Order selects the kernel ordering; the paper uses eq. 1 total weight.
	Order analysis.KernelOrder
	// Edges carries the profiled control-flow transition counts used by the
	// reconfiguration model (empty = only the initial configuration is
	// charged).
	Edges []finegrain.EdgeFreq
	// MaxMoves bounds the number of kernels moved (0 = all candidates).
	MaxMoves int
	// SkipNonImproving, when set, rejects moves that increase t_total
	// (communication overhead exceeding the acceleration gain). The paper's
	// engine moves unconditionally; this switch exists for the ablation
	// benches.
	SkipNonImproving bool
	// OnMove, when non-nil, is called synchronously after every accepted
	// kernel move with the move just recorded. It runs on the engine's own
	// goroutine, so callbacks observe moves in trajectory order.
	OnMove func(Move)

	// Objective selects the move-loop objective. Under ObjectiveSimulated
	// the loop walks the full trajectory (ignoring the constraint-met early
	// exit), scores every prefix with SimCost and keeps the mapping with the
	// minimal simulated makespan.
	Objective Objective
	// RerankK keeps the closed-form loop but re-scores the k trajectory
	// prefixes with the best model t_total by simulation, returning the one
	// with the minimal simulated makespan (0 = off, -1 = all prefixes, which
	// is equivalent to ObjectiveSimulated). Mutually exclusive with
	// ObjectiveSimulated.
	RerankK int
	// SimCost scores a candidate moved-set by its simulated makespan in FPGA
	// cycles. Required when Objective is ObjectiveSimulated or RerankK is
	// non-zero; the engine facade injects the co-simulator here (this package
	// cannot import internal/sim, which imports it back for ComputeLiveIO).
	SimCost func(ctx context.Context, moved []ir.BlockID) (int64, error)
	// SimCostBatch, when non-nil, scores a whole slate of candidate
	// moved-sets at once and takes precedence over per-candidate SimCost
	// calls in the argmin pass. The scorer may evaluate candidates
	// concurrently and may prune any candidate it can prove is not the
	// argmin (bounded below above some fully scored candidate); a pruned
	// entry carries no cycle count and is skipped by the selection. The
	// returned slice must have one entry per candidate, index-aligned.
	SimCostBatch func(ctx context.Context, candidates [][]ir.BlockID) ([]SimScore, error)
}

// SimScore is one candidate's entry in a SimCostBatch result: either its
// simulated makespan in FPGA cycles, or Pruned — the scorer proved the
// candidate strictly worse than another candidate it fully scored, so the
// makespan was never computed and the candidate cannot be the argmin.
type SimScore struct {
	Cycles int64
	Pruned bool
}

// Move records one accepted kernel move and the resulting system state.
type Move struct {
	Block ir.BlockID
	// CGCCycles is the kernel's per-execution latency on the data-path in
	// T_CGC cycles.
	CGCCycles int64
	// TotalAfter is t_total (FPGA cycles) after this move.
	TotalAfter int64
}

// Result is the outcome of a partitioning run, mirroring the rows of the
// paper's Tables 2 and 3.
type Result struct {
	Func       string
	Constraint int64

	// InitialCycles is the all-FPGA execution time (first row of the
	// tables); Met reports whether the constraint was satisfied.
	InitialCycles int64
	Met           bool

	// InitialPartitions is the number of temporal partitions (configuration
	// bit-streams) of the all-FPGA mapping.
	InitialPartitions int

	// Moved lists the blocks accelerated on the CGC data-path, in move
	// order (fourth row); Moves carries the per-move details.
	Moved []ir.BlockID
	Moves []Move

	// FinalCycles is t_total after partitioning (fifth row); TFPGA,
	// TCoarse and TComm are its eq. 2 components, all in FPGA cycles.
	FinalCycles int64
	TFPGA       int64
	TCoarse     int64
	TComm       int64

	// CyclesInCGC is the cycles spent executing the moved kernels on the
	// data-path, expressed in FPGA-cycle units (third row of the tables).
	CyclesInCGC int64

	// Unmappable lists kernels the CGC cannot execute (divisions); they
	// stay on the FPGA.
	Unmappable []ir.BlockID

	// Skipped lists kernels rejected by SkipNonImproving.
	Skipped []ir.BlockID

	// Objective echoes the configured move-loop objective.
	Objective Objective
	// SimulatedCycles is the simulated makespan (FPGA cycles) of the chosen
	// mapping when the objective or rerank consulted the simulator; 0 when
	// the run was purely closed-form.
	SimulatedCycles int64
	// SimScored counts the candidate mappings scored by SimCost.
	SimScored int
}

// ReductionPct returns the % cycles reduction over the all-FPGA solution
// (last row of Tables 2–3).
func (r *Result) ReductionPct() float64 {
	if r.InitialCycles == 0 {
		return 0
	}
	return 100 * float64(r.InitialCycles-r.FinalCycles) / float64(r.InitialCycles)
}

// ErrInfeasible reports that a mapping step failed outright (for example an
// operator wider than A_FPGA).
var ErrInfeasible = errors.New("partition: mapping infeasible")

// Partition runs the engine on the flat function f of prog using the
// analysis report rep (which must describe f). The context is checked
// between kernel moves: cancelling it makes the engine return ctx.Err()
// without finishing the trajectory. A nil ctx means context.Background().
func Partition(ctx context.Context, prog *ir.Program, f *ir.Function, rep *analysis.Report, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Constraint <= 0 {
		return nil, fmt.Errorf("partition: timing constraint must be positive, got %d", cfg.Constraint)
	}
	if rep == nil || len(rep.Blocks) != len(f.Blocks) {
		return nil, fmt.Errorf("partition: analysis report does not match function")
	}
	if cfg.RerankK < -1 {
		return nil, fmt.Errorf("partition: rerank k must be -1 (all), 0 (off) or positive, got %d", cfg.RerankK)
	}
	if cfg.RerankK != 0 && cfg.Objective == ObjectiveSimulated {
		return nil, fmt.Errorf("partition: rerank and the simulated objective are mutually exclusive (rerank already ends with a simulated selection)")
	}
	// simSelect runs move selection on simulated makespans: the loop walks
	// the whole trajectory and a simulation-scored argmin pass picks the
	// winning prefix afterwards.
	simSelect := cfg.Objective == ObjectiveSimulated || cfg.RerankK != 0
	if simSelect && cfg.SimCost == nil {
		return nil, fmt.Errorf("partition: objective %v (rerank %d) needs a SimCost evaluator", cfg.Objective, cfg.RerankK)
	}

	plat := cfg.Platform
	freq := make([]uint64, len(f.Blocks))
	for i := range rep.Blocks {
		freq[i] = rep.Blocks[i].Freq
	}

	// Step 2: map everything to the fine-grain hardware.
	pm, err := finegrain.PackFunction(f, plat.Fine, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	res := &Result{Func: f.Name, Constraint: cfg.Constraint, Objective: cfg.Objective}
	// One span brackets the whole engine run — the move loop plus, under
	// simulation-scored selection, the argmin pass. Error returns leave it
	// unrecorded, which is fine: the trace finalizes on its root, not here.
	ctx, loopSpan := obs.Start(ctx, "partition.moveloop", obs.Int("kernels_total", len(f.Blocks)))
	defer func() {
		loopSpan.Set(obs.Int("moves", len(res.Moved)), obs.Bool("met", res.Met), obs.Int("sim_scored", res.SimScored))
		loopSpan.End()
	}()
	res.InitialCycles = pm.TotalCycles(freq, cfg.Edges, plat.Fine.ReconfigCycles)
	res.InitialPartitions = pm.NumPartitions
	res.FinalCycles = res.InitialCycles
	res.TFPGA = res.InitialCycles
	if res.InitialCycles <= cfg.Constraint && !simSelect {
		// Timing met by the all-FPGA solution: the methodology exits before
		// the analysis/partitioning steps. Simulation-scored selection keeps
		// walking — moving kernels can still lower the simulated makespan
		// even when the closed form is already under the constraint.
		res.Met = true
		return res, nil
	}

	// Step 3 products: ordered kernels and live-in/out footprints.
	kernels := analysis.OrderKernels(rep, cfg.Order)
	liveIO := ComputeLiveIO(f)
	arrLen := coarsegrain.ArrLenOf(prog, f)

	moved := map[ir.BlockID]bool{}
	var coarseCGCCycles int64 // Σ latency×freq in T_CGC cycles (eq. 3)
	var commCycles int64
	ratio := int64(plat.Coarse.ClockRatio)

	evalTotal := func() (tFPGA, tCoarse, tComm, total int64, err error) {
		cur, err := finegrain.PackFunction(f, plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
		if err != nil {
			return 0, 0, 0, 0, err
		}
		tFPGA = cur.TotalCycles(freq, cfg.Edges, plat.Fine.ReconfigCycles)
		tCoarse = (coarseCGCCycles + ratio - 1) / ratio
		tComm = commCycles
		return tFPGA, tCoarse, tComm, tFPGA + tCoarse + tComm, nil
	}

	// Step 4: move kernels one by one until the constraint is met (under
	// simulation-scored selection: until the candidates run out, recording
	// the eq. 2 components of every prefix for the argmin pass).
	type prefix struct{ tFPGA, tCoarse, tComm, total int64 }
	prefixes := []prefix{{tFPGA: res.InitialCycles, total: res.InitialCycles}}
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.MaxMoves > 0 && len(res.Moved) >= cfg.MaxMoves {
			break
		}
		_, moveSpan := obs.Start(ctx, "move", obs.Int("block", int(k)))
		blk := f.Block(k)
		sched, err := coarsegrain.MapDFG(ir.BuildDFG(f, blk), plat.Coarse, arrLen)
		if err != nil {
			if errors.Is(err, coarsegrain.ErrUnmappable) {
				res.Unmappable = append(res.Unmappable, k)
				moveSpan.Set(obs.String("outcome", "unmappable"))
				moveSpan.End()
				continue
			}
			return nil, err
		}
		io := liveIO[k]
		moveComm := int64(freq[k]) * (int64(io.In+io.Out)*int64(plat.Comm.CyclesPerWord) + int64(plat.Comm.SyncCycles))
		moveCGC := sched.Latency * int64(freq[k])

		if cfg.SkipNonImproving {
			// Does the move pay for itself? Compare the kernel's current
			// FPGA cost against its coarse cost plus communication.
			curPM, err := finegrain.PackFunction(f, plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
			if err != nil {
				return nil, err
			}
			fpgaCost := curPM.PerBlockCycles[k] * int64(freq[k])
			coarseCost := (moveCGC+ratio-1)/ratio + moveComm
			if coarseCost >= fpgaCost {
				res.Skipped = append(res.Skipped, k)
				moveSpan.Set(obs.String("outcome", "skipped"))
				moveSpan.End()
				continue
			}
		}

		moved[k] = true
		coarseCGCCycles += moveCGC
		commCycles += moveComm
		res.Moved = append(res.Moved, k)

		tFPGA, tCoarse, tComm, total, err := evalTotal()
		if err != nil {
			return nil, err
		}
		res.TFPGA, res.TCoarse, res.TComm = tFPGA, tCoarse, tComm
		res.FinalCycles = total
		res.CyclesInCGC = tCoarse
		prefixes = append(prefixes, prefix{tFPGA: tFPGA, tCoarse: tCoarse, tComm: tComm, total: total})
		mv := Move{Block: k, CGCCycles: sched.Latency, TotalAfter: total}
		res.Moves = append(res.Moves, mv)
		if cfg.OnMove != nil {
			cfg.OnMove(mv)
		}
		moveSpan.Set(obs.String("outcome", "moved"), obs.Int64("t_total", total))
		moveSpan.End()
		if total <= cfg.Constraint && !simSelect {
			res.Met = true
			return res, nil
		}
	}
	if !simSelect {
		// Candidates exhausted without satisfying the constraint: report the
		// best-effort partitioning (Met stays false).
		return res, nil
	}

	// Simulation-scored selection: score the candidate prefixes in prefix
	// order and keep the first one with the minimal simulated makespan.
	// ObjectiveSimulated scores every prefix; rerank scores the RerankK
	// prefixes with the best model t_total (so rerank with k = -1 or
	// k >= len(prefixes) degenerates to the full simulated objective —
	// identical candidate set, identical traversal order and tie-break).
	candidate := make([]bool, len(prefixes))
	if cfg.Objective == ObjectiveSimulated || cfg.RerankK < 0 || cfg.RerankK >= len(prefixes) {
		for i := range candidate {
			candidate[i] = true
		}
	} else {
		order := make([]int, len(prefixes))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return prefixes[order[a]].total < prefixes[order[b]].total })
		for _, i := range order[:cfg.RerankK] {
			candidate[i] = true
		}
	}
	argCtx, argSpan := obs.Start(ctx, "sim.argmin", obs.Int("prefixes", len(prefixes)))
	ctx = argCtx
	bestIdx, bestSim := -1, int64(0)
	if cfg.SimCostBatch != nil {
		// Batch path: hand the scorer the whole slate so it can run its
		// worker pool and prune. Selection stays in candidate-index order
		// with a strict < comparison, so ties break on the lowest trajectory
		// index exactly like the serial loop — a pruned candidate is by
		// contract strictly worse than some scored one, so skipping it never
		// changes the argmin.
		idxs := make([]int, 0, len(prefixes))
		cands := make([][]ir.BlockID, 0, len(prefixes))
		for i := range prefixes {
			if candidate[i] {
				idxs = append(idxs, i)
				cands = append(cands, res.Moved[:i])
			}
		}
		scores, err := cfg.SimCostBatch(ctx, cands)
		if err != nil {
			return nil, err
		}
		if len(scores) != len(cands) {
			return nil, fmt.Errorf("partition: SimCostBatch returned %d scores for %d candidates", len(scores), len(cands))
		}
		for k, i := range idxs {
			if scores[k].Pruned {
				continue
			}
			res.SimScored++
			if bestIdx < 0 || scores[k].Cycles < bestSim {
				bestIdx, bestSim = i, scores[k].Cycles
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("partition: SimCostBatch pruned every candidate")
		}
	} else {
		for i := range prefixes {
			if !candidate[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sim, err := cfg.SimCost(ctx, res.Moved[:i])
			if err != nil {
				return nil, err
			}
			res.SimScored++
			if bestIdx < 0 || sim < bestSim {
				bestIdx, bestSim = i, sim
			}
		}
	}
	argSpan.Set(obs.Int("scored", res.SimScored), obs.Int("best_prefix", bestIdx))
	argSpan.End()
	best := prefixes[bestIdx]
	res.Moved = res.Moved[:bestIdx]
	res.Moves = res.Moves[:bestIdx]
	res.TFPGA, res.TCoarse, res.TComm = best.tFPGA, best.tCoarse, best.tComm
	res.FinalCycles = best.total
	res.CyclesInCGC = best.tCoarse
	res.Met = best.total <= cfg.Constraint
	res.SimulatedCycles = bestSim
	return res, nil
}

// FormatTable renders the result in the layout of the paper's Tables 2–3.
func (r *Result) FormatTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Initial cycles (all-FPGA): %d\n", r.InitialCycles)
	fmt.Fprintf(&sb, "Timing constraint:         %d\n", r.Constraint)
	fmt.Fprintf(&sb, "Cycles in CGC:             %d\n", r.CyclesInCGC)
	ids := make([]string, len(r.Moved))
	for i, b := range r.Moved {
		ids[i] = fmt.Sprintf("%d", b)
	}
	fmt.Fprintf(&sb, "BB no. moved:              %s\n", strings.Join(ids, ", "))
	fmt.Fprintf(&sb, "Final cycles:              %d\n", r.FinalCycles)
	fmt.Fprintf(&sb, "%% cycles reduction:        %.1f\n", r.ReductionPct())
	fmt.Fprintf(&sb, "Constraint met:            %v\n", r.Met)
	return sb.String()
}
