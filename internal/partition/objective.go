package partition

import "fmt"

// Objective selects what the move loop optimizes.
//
// ObjectiveModel is the paper's engine: the closed-form t_total (eq. 2) is
// recomputed after every move and the loop stops at the first mapping that
// meets the timing constraint.
//
// ObjectiveSimulated replaces the closed form with executed reality: every
// trajectory prefix is scored by replaying the profiled trace through the
// discrete-event co-simulator (Config.SimCost), and the mapping with the
// minimal simulated makespan wins — closing the estimation-vs-execution gap
// the simulator exposed (frame pipelining, port contention and prefetch are
// invisible to eq. 2, so the model can prefer a partition the simulator
// proves slower).
type Objective int

const (
	// ObjectiveModel optimizes the closed-form t_total (the default).
	ObjectiveModel Objective = iota
	// ObjectiveSimulated optimizes the simulated makespan of each candidate
	// mapping (requires Config.SimCost).
	ObjectiveSimulated
)

// String returns the canonical flag/wire spelling of the objective.
func (o Objective) String() string {
	switch o {
	case ObjectiveModel:
		return "model"
	case ObjectiveSimulated:
		return "sim"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// ParseObjective parses the flag/wire spelling of an objective. The empty
// string selects ObjectiveModel, matching the zero value.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "model":
		return ObjectiveModel, nil
	case "sim", "simulated":
		return ObjectiveSimulated, nil
	}
	return 0, fmt.Errorf(`partition: unknown objective %q (want "model" or "sim")`, s)
}
