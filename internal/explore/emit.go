package explore

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ResultSet is a completed sweep: the spec that produced it and one Outcome
// per expanded point, in expansion order.
type ResultSet struct {
	Spec     Spec      `json:"spec"`
	Outcomes []Outcome `json:"outcomes"`
	// Partial marks a sweep cut short by cancellation: Outcomes then holds
	// only the cells that completed before the cut (in expansion order),
	// not the full grid. Machine consumers must not treat a partial set as
	// grid coverage.
	Partial bool `json:"partial,omitempty"`
}

// Failed returns the outcomes whose evaluation errored.
func (rs *ResultSet) Failed() []Outcome {
	var out []Outcome
	for _, o := range rs.Outcomes {
		if o.Failed() {
			out = append(out, o)
		}
	}
	return out
}

// Find returns the outcome of the cell with the given coordinates (the
// point's raw, pre-defaulting axis values), or nil if the sweep has no such
// cell.
func (rs *ResultSet) Find(bench, preset string, afpga, ncgc int, constraint int64) *Outcome {
	for i := range rs.Outcomes {
		o := &rs.Outcomes[i]
		if o.Benchmark == bench && o.Preset == preset &&
			o.AFPGA == afpga && o.NumCGCs == ncgc && o.Constraint == constraint {
			return o
		}
	}
	return nil
}

// WriteJSON emits the result set as indented JSON.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// csvHeader is the fixed column layout of WriteCSV. The co-simulation
// columns stay empty on cells the simulator never scored.
var csvHeader = []string{
	"index", "benchmark", "preset", "afpga", "cgcs", "constraint",
	"initial_cycles", "initial_partitions", "cycles_in_cgc",
	"final_cycles", "t_fpga", "t_coarse", "t_comm",
	"met", "moved", "reduction_pct", "speedup",
	"objective", "frames", "ports", "prefetch", "sim_cycles", "sim_speedup",
	"err",
}

// WriteCSV emits one row per outcome with a fixed header; the moved-block
// list is "|"-joined to stay a single CSV field.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, o := range rs.Outcomes {
		moved := make([]string, len(o.Moved))
		for i, b := range o.Moved {
			moved[i] = strconv.Itoa(b)
		}
		var objective, frames, ports, prefetch, simCycles, simSpeedup string
		if o.Simulated {
			objective = o.EffectiveObjective
			frames = strconv.Itoa(o.EffectiveFrames)
			ports = strconv.Itoa(o.EffectivePorts)
			prefetch = strconv.FormatBool(o.EffectivePrefetch)
			simCycles = strconv.FormatInt(o.SimCycles, 10)
			simSpeedup = strconv.FormatFloat(o.SimSpeedup, 'f', 3, 64)
		}
		rec := []string{
			strconv.Itoa(o.Index), o.Benchmark, o.Preset,
			strconv.Itoa(o.AreaUsed()), strconv.Itoa(o.CGCsUsed()),
			strconv.FormatInt(o.EffectiveConstraint, 10),
			strconv.FormatInt(o.InitialCycles, 10),
			strconv.Itoa(o.InitialPartitions),
			strconv.FormatInt(o.CyclesInCGC, 10),
			strconv.FormatInt(o.FinalCycles, 10),
			strconv.FormatInt(o.TFPGA, 10),
			strconv.FormatInt(o.TCoarse, 10),
			strconv.FormatInt(o.TComm, 10),
			strconv.FormatBool(o.Met),
			strings.Join(moved, "|"),
			strconv.FormatFloat(o.ReductionPct, 'f', 1, 64),
			strconv.FormatFloat(o.Speedup, 'f', 3, 64),
			objective, frames, ports, prefetch, simCycles, simSpeedup,
			o.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Pareto returns the non-dominated front of the speedup-vs-area trade-off,
// per benchmark: an outcome is on the front if no other successful outcome
// of the same benchmark has both a smaller-or-equal effective A_FPGA and a
// strictly-better speedup (or equal speedup on strictly less area). The
// front is sorted by benchmark, then ascending area.
func (rs *ResultSet) Pareto() []Outcome {
	var front []Outcome
	for i, o := range rs.Outcomes {
		if o.Failed() {
			continue
		}
		dominated := false
		for j, p := range rs.Outcomes {
			if i == j || p.Failed() || p.Benchmark != o.Benchmark {
				continue
			}
			if p.AreaUsed() <= o.AreaUsed() && p.Speedup >= o.Speedup &&
				(p.AreaUsed() < o.AreaUsed() || p.Speedup > o.Speedup) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, o)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Benchmark != front[j].Benchmark {
			return front[i].Benchmark < front[j].Benchmark
		}
		if front[i].AreaUsed() != front[j].AreaUsed() {
			return front[i].AreaUsed() < front[j].AreaUsed()
		}
		return front[i].Index < front[j].Index
	})
	return front
}

// FormatSummary renders the full grid as an aligned text table followed by
// the Pareto front of the speedup-vs-area trade-off. Sweeps with simulated
// cells grow four extra columns: the objective, the frame count, the
// simulated makespan and the simulated speedup.
func (rs *ResultSet) FormatSummary() string {
	simulated := false
	for _, o := range rs.Outcomes {
		if o.Simulated {
			simulated = true
			break
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-10s %-12s %-7s %-5s %-12s %-14s %-14s %-8s %-8s %-6s",
		"index", "bench", "preset", "afpga", "cgcs", "constraint",
		"initial", "final", "red%", "speedup", "met")
	if simulated {
		fmt.Fprintf(&sb, " %-9s %-7s %-14s %-8s", "objective", "frames", "simcycles", "simspeed")
	}
	sb.WriteString("\n")
	for _, o := range rs.Outcomes {
		preset := o.Preset
		if preset == "" {
			preset = "default"
		}
		if o.Failed() {
			fmt.Fprintf(&sb, "%-6d %-10s %-12s %-7d %-5d error: %s\n",
				o.Index, o.Benchmark, preset, o.AFPGA, o.NumCGCs, o.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-6d %-10s %-12s %-7d %-5d %-12d %-14d %-14d %-8.1f %-8.3f %-6v",
			o.Index, o.Benchmark, preset, o.AreaUsed(), o.CGCsUsed(), o.EffectiveConstraint,
			o.InitialCycles, o.FinalCycles, o.ReductionPct, o.Speedup, o.Met)
		if simulated {
			if o.Simulated {
				fmt.Fprintf(&sb, " %-9s %-7d %-14d %-8.3f",
					o.EffectiveObjective, o.EffectiveFrames, o.SimCycles, o.SimSpeedup)
			} else {
				fmt.Fprintf(&sb, " %-9s %-7s %-14s %-8s", "-", "-", "-", "-")
			}
		}
		sb.WriteString("\n")
	}
	front := rs.Pareto()
	if len(front) > 0 {
		sb.WriteString("\nPareto front (speedup vs. A_FPGA):\n")
		for _, o := range front {
			fmt.Fprintf(&sb, "  %-10s A_FPGA=%-7d cgcs=%-3d speedup=%.3f (final %d cycles)\n",
				o.Benchmark, o.AreaUsed(), o.CGCsUsed(), o.Speedup, o.FinalCycles)
		}
	}
	return sb.String()
}
