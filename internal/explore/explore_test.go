package explore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Benchmarks: []string{"ofdm"}, Areas: []int{1500}, CGCs: []int{2}, Constraints: []int64{60000}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, bad := range map[string]Spec{
		"no benchmarks":   {},
		"empty benchmark": {Benchmarks: []string{""}},
		"zero area":       {Benchmarks: []string{"a"}, Areas: []int{0}},
		"negative cgc":    {Benchmarks: []string{"a"}, CGCs: []int{-1}},
		"zero constraint": {Benchmarks: []string{"a"}, Constraints: []int64{0}},
		"bad workers":     {Benchmarks: []string{"a"}, Workers: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecExpand(t *testing.T) {
	s := Spec{
		Benchmarks:  []string{"ofdm", "jpeg"},
		Presets:     []string{"", "dsp-rich"},
		Areas:       []int{1500, 5000},
		CGCs:        []int{2, 3},
		Constraints: []int64{60000},
	}
	points := s.Expand()
	if want := 2 * 2 * 2 * 2 * 1; len(points) != want || s.NumPoints() != want {
		t.Fatalf("expanded %d points (NumPoints %d), want %d", len(points), s.NumPoints(), want)
	}
	// Deterministic order: benchmarks outermost, constraints innermost.
	want0 := Point{Index: 0, Benchmark: "ofdm", Preset: "", AFPGA: 1500, NumCGCs: 2, Constraint: 60000}
	if points[0] != want0 {
		t.Fatalf("first point %+v, want %+v", points[0], want0)
	}
	if points[1].NumCGCs != 3 || points[2].AFPGA != 5000 {
		t.Fatalf("axis order broken: %+v %+v", points[1], points[2])
	}
	if points[4].Benchmark != "ofdm" || points[4].Preset != "dsp-rich" {
		t.Fatalf("preset axis broken: %+v", points[4])
	}
	if points[8].Benchmark != "jpeg" || points[8].Preset != "" {
		t.Fatalf("benchmark axis broken: %+v", points[8])
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
	}
}

func TestSpecExpandDefaults(t *testing.T) {
	points := Spec{Benchmarks: []string{"ofdm"}}.Expand()
	if len(points) != 1 {
		t.Fatalf("empty axes expanded to %d points, want 1", len(points))
	}
	p := points[0]
	if p.AFPGA != 0 || p.NumCGCs != 0 || p.Constraint != 0 || p.Preset != "" {
		t.Fatalf("default point not zero-valued: %+v", p)
	}
}

// fakeEval is a deterministic pure function of the point, suitable for
// checking that results are independent of scheduling.
func fakeEval(p Point) (Outcome, error) {
	if p.Benchmark == "boom" {
		return Outcome{}, fmt.Errorf("synthetic failure at %d", p.Index)
	}
	initial := int64(1000 * (p.AFPGA + 10*p.NumCGCs))
	final := initial / int64(p.NumCGCs+1)
	return Outcome{
		InitialCycles:       initial,
		FinalCycles:         final,
		EffectiveConstraint: p.Constraint,
		Met:                 true,
		Moved:               []int{p.AFPGA % 7, p.NumCGCs},
		Speedup:             float64(initial) / float64(final),
	}, nil
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Spec{
		Benchmarks:  []string{"a", "b", "c"},
		Areas:       []int{1000, 1500, 5000},
		CGCs:        []int{1, 2, 3, 4},
		Constraints: []int64{60000},
	}
	var ref []Outcome
	for _, workers := range []int{1, 2, 7, 64} {
		s := base
		s.Workers = workers
		var calls atomic.Int64
		rs, err := Run(context.Background(), s, func(p Point) (Outcome, error) {
			calls.Add(1)
			return fakeEval(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(calls.Load()) != s.NumPoints() {
			t.Fatalf("workers=%d: %d evaluations for %d points", workers, calls.Load(), s.NumPoints())
		}
		if ref == nil {
			ref = rs.Outcomes
			continue
		}
		if !reflect.DeepEqual(ref, rs.Outcomes) {
			t.Fatalf("workers=%d: outcomes differ from workers=1", workers)
		}
	}
}

func TestRunSharesEvaluatorSafely(t *testing.T) {
	// The evaluator contract is concurrency-safety; exercise a shared
	// mutable resource behind a mutex the way the facade's profile cache is.
	var mu sync.Mutex
	seen := map[int]bool{}
	s := Spec{Benchmarks: []string{"a"}, Areas: []int{1, 2, 3, 4, 5, 6, 7, 8}, Workers: 4}
	_, err := Run(context.Background(), s, func(p Point) (Outcome, error) {
		mu.Lock()
		defer mu.Unlock()
		if seen[p.Index] {
			return Outcome{}, fmt.Errorf("point %d evaluated twice", p.Index)
		}
		seen[p.Index] = true
		return Outcome{InitialCycles: 1, FinalCycles: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("evaluated %d points, want 8", len(seen))
	}
}

func TestRunRecordsPerPointErrors(t *testing.T) {
	s := Spec{Benchmarks: []string{"ok", "boom"}, Areas: []int{1500}, CGCs: []int{2}, Workers: 2}
	rs, err := Run(context.Background(), s, func(p Point) (Outcome, error) {
		if p.Benchmark == "ok" {
			return Outcome{InitialCycles: 10, FinalCycles: 5}, nil
		}
		return fakeEval(p)
	})
	if err != nil {
		t.Fatalf("per-point failure aborted the sweep: %v", err)
	}
	failed := rs.Failed()
	if len(failed) != 1 || failed[0].Benchmark != "boom" || !strings.Contains(failed[0].Err, "synthetic failure") {
		t.Fatalf("failure not recorded: %+v", failed)
	}
	if ok := rs.Find("ok", "", 1500, 2, 0); ok == nil || ok.Failed() || ok.InitialCycles != 10 {
		t.Fatalf("successful cell corrupted: %+v", ok)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}, fakeEval); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Run(context.Background(), Spec{Benchmarks: []string{"a"}}, nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
}

// goldenSpec is the fixture shared by the emitter golden tests.
func goldenSpec() Spec {
	return Spec{
		Benchmarks:  []string{"ofdm"},
		Areas:       []int{1500, 5000},
		CGCs:        []int{2},
		Constraints: []int64{60000},
		Seed:        1,
		Workers:     1,
	}
}

func goldenResultSet(t *testing.T) *ResultSet {
	t.Helper()
	rs, err := Run(context.Background(), goldenSpec(), func(p Point) (Outcome, error) {
		return Outcome{
			InitialCycles:       int64(100 * p.AFPGA),
			InitialPartitions:   4,
			CyclesInCGC:         320,
			FinalCycles:         int64(10 * p.AFPGA),
			TFPGA:               int64(9 * p.AFPGA),
			TCoarse:             320,
			TComm:               int64(p.AFPGA) - 320,
			EffectiveAFPGA:      p.AFPGA,
			EffectiveCGCs:       p.NumCGCs,
			EffectiveConstraint: p.Constraint,
			Met:                 true,
			Moved:               []int{26, 29},
			ReductionPct:        90,
			Speedup:             10,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

const goldenCSV = `index,benchmark,preset,afpga,cgcs,constraint,initial_cycles,initial_partitions,cycles_in_cgc,final_cycles,t_fpga,t_coarse,t_comm,met,moved,reduction_pct,speedup,objective,frames,ports,prefetch,sim_cycles,sim_speedup,err
0,ofdm,,1500,2,60000,150000,4,320,15000,13500,320,1180,true,26|29,90.0,10.000,,,,,,,
1,ofdm,,5000,2,60000,500000,4,320,50000,45000,320,4680,true,26|29,90.0,10.000,,,,,,,
`

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResultSet(t).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenCSV {
		t.Fatalf("CSV drifted from golden:\n got:\n%s\nwant:\n%s", buf.String(), goldenCSV)
	}
}

const goldenJSON = `{
  "spec": {
    "benchmarks": [
      "ofdm"
    ],
    "areas": [
      1500,
      5000
    ],
    "cgcs": [
      2
    ],
    "constraints": [
      60000
    ],
    "seed": 1,
    "workers": 1
  },
  "outcomes": [
    {
      "index": 0,
      "benchmark": "ofdm",
      "afpga": 1500,
      "cgcs": 2,
      "constraint": 60000,
      "initial_cycles": 150000,
      "initial_partitions": 4,
      "cycles_in_cgc": 320,
      "final_cycles": 15000,
      "t_fpga": 13500,
      "t_coarse": 320,
      "t_comm": 1180,
      "effective_afpga": 1500,
      "effective_cgcs": 2,
      "effective_constraint": 60000,
      "met": true,
      "moved": [
        26,
        29
      ],
      "reduction_pct": 90,
      "speedup": 10
    },
    {
      "index": 1,
      "benchmark": "ofdm",
      "afpga": 5000,
      "cgcs": 2,
      "constraint": 60000,
      "initial_cycles": 500000,
      "initial_partitions": 4,
      "cycles_in_cgc": 320,
      "final_cycles": 50000,
      "t_fpga": 45000,
      "t_coarse": 320,
      "t_comm": 4680,
      "effective_afpga": 5000,
      "effective_cgcs": 2,
      "effective_constraint": 60000,
      "met": true,
      "moved": [
        26,
        29
      ],
      "reduction_pct": 90,
      "speedup": 10
    }
  ]
}
`

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResultSet(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenJSON {
		t.Fatalf("JSON drifted from golden:\n got:\n%s\nwant:\n%s", buf.String(), goldenJSON)
	}
}

func TestPareto(t *testing.T) {
	rs := &ResultSet{Outcomes: []Outcome{
		{Point: Point{Index: 0, Benchmark: "a", AFPGA: 1500}, Speedup: 3.0},
		{Point: Point{Index: 1, Benchmark: "a", AFPGA: 5000}, Speedup: 2.5}, // dominated by 0
		{Point: Point{Index: 2, Benchmark: "a", AFPGA: 5000}, Speedup: 4.0}, // more area, more speedup
		{Point: Point{Index: 3, Benchmark: "a", AFPGA: 800}, Err: "infeasible"},
		{Point: Point{Index: 4, Benchmark: "b", AFPGA: 9000}, Speedup: 1.1}, // other benchmark: own front
	}}
	front := rs.Pareto()
	var got []int
	for _, o := range front {
		got = append(got, o.Index)
	}
	if want := []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("front %v, want %v", got, want)
	}
}

func TestParetoUsesEffectiveArea(t *testing.T) {
	// Preset-defaulted cells carry AFPGA == 0 in the raw point; dominance
	// must compare the effective areas the evaluator reports, so the
	// small-area preset stays on the front even at lower speedup.
	rs := &ResultSet{Outcomes: []Outcome{
		{Point: Point{Index: 0, Benchmark: "a", Preset: "small"}, EffectiveAFPGA: 1500, Speedup: 3.0},
		{Point: Point{Index: 1, Benchmark: "a", Preset: "large"}, EffectiveAFPGA: 5000, Speedup: 3.5},
	}}
	front := rs.Pareto()
	if len(front) != 2 || front[0].Index != 0 || front[1].Index != 1 {
		t.Fatalf("effective-area front wrong: %+v", front)
	}
}

func TestFormatSummary(t *testing.T) {
	rs := goldenResultSet(t)
	s := rs.FormatSummary()
	for _, want := range []string{"Pareto front", "ofdm", "150000", "speedup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunObservedOrderedProgress(t *testing.T) {
	// A finished cell must be parked until every earlier cell is reported:
	// the progress stream is expansion-ordered for any worker count.
	s := Spec{
		Benchmarks: []string{"a", "b"},
		Areas:      []int{1000, 1500, 5000},
		CGCs:       []int{1, 2, 3},
	}
	for _, workers := range []int{1, 3, 16} {
		spec := s
		spec.Workers = workers
		var events []int
		rs, err := RunObserved(context.Background(), spec, fakeEval, func(o Outcome, done, total int) {
			if done != len(events)+1 || total != spec.NumPoints() {
				t.Fatalf("workers=%d: done=%d total=%d after %d events", workers, done, total, len(events))
			}
			events = append(events, o.Index)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != len(rs.Outcomes) {
			t.Fatalf("workers=%d: %d events for %d outcomes", workers, len(events), len(rs.Outcomes))
		}
		for i, idx := range events {
			if idx != i {
				t.Fatalf("workers=%d: event %d reported cell %d (want expansion order)", workers, i, idx)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	s := Spec{Benchmarks: []string{"a"}, Areas: []int{1, 2, 3, 4, 5, 6, 7, 8}, Workers: 1}

	// Pre-cancelled contexts never start evaluating.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	if _, err := Run(dead, s, func(p Point) (Outcome, error) {
		calls.Add(1)
		return Outcome{}, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("pre-cancelled run evaluated %d cells", calls.Load())
	}

	// Cancelling from the progress callback stops emission immediately and
	// surfaces ctx.Err() together with a partial ResultSet holding only the
	// completed cells.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	var reported []int
	rs, err := RunObserved(ctx, s, fakeEval, func(o Outcome, done, total int) {
		reported = append(reported, o.Index)
		if done == 2 {
			cancelMid()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got (%v, %v)", rs, err)
	}
	if rs == nil || !rs.Partial {
		t.Fatalf("cancelled sweep did not return a partial result set: %+v", rs)
	}
	if len(rs.Outcomes) != 2 || rs.Outcomes[0].Index != 0 || rs.Outcomes[1].Index != 1 {
		t.Fatalf("partial outcomes wrong: %+v", rs.Outcomes)
	}
	if len(reported) != 2 {
		t.Fatalf("progress kept streaming after cancellation: %v", reported)
	}

	// A nil context means context.Background().
	if _, err := Run(nil, s, fakeEval); err != nil {
		t.Fatalf("nil context rejected: %v", err)
	}
}
