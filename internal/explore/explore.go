// Package explore is the design-space-exploration engine behind the paper's
// evaluation grids (Tables 2–3): a declarative Spec names the sweep axes —
// benchmarks × platform presets × A_FPGA values × CGC counts × timing
// constraints — Expand crosses them into configuration Points in a fixed
// deterministic order, and Run evaluates every point on a bounded worker
// pool. The engine is deliberately ignorant of the methodology itself: the
// caller supplies an Evaluator (the hybridpart facade injects one that
// shares a single compiled+profiled App per benchmark, so the sweep never
// recompiles or re-profiles per cell), which keeps this package free of
// import cycles and trivially testable with fake evaluators.
//
// Results land in a ResultSet indexed by expansion order, so the output is
// identical regardless of the worker count. ResultSet knows how to emit
// itself as JSON or CSV and how to summarize the speedup-vs-area
// Pareto front.
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Point is one configuration cell of the sweep grid: a benchmark evaluated
// on one platform variant. Zero-valued axes (AFPGA == 0, NumCGCs == 0,
// Constraint == 0) mean "use the preset's / benchmark's default" and are
// resolved by the evaluator, not the engine.
type Point struct {
	// Index is the cell's position in expansion order; Run stores its
	// outcome at the same index of ResultSet.Outcomes.
	Index int `json:"index"`
	// Benchmark names the application under evaluation.
	Benchmark string `json:"benchmark"`
	// Preset names a registered platform variant ("" = default platform).
	Preset string `json:"preset,omitempty"`
	// AFPGA overrides the usable fine-grain area (0 = preset value).
	AFPGA int `json:"afpga"`
	// NumCGCs overrides the coarse-grain CGC count (0 = preset value).
	NumCGCs int `json:"cgcs"`
	// Regions overrides the number of independently reconfigurable
	// fine-grain regions (0 = preset value; 1 = monolithic context).
	Regions int `json:"regions,omitempty"`
	// Constraint overrides the timing constraint in FPGA cycles
	// (0 = the benchmark's paper constraint).
	Constraint int64 `json:"constraint"`
	// Frames and Ports set the cell's co-simulation operating point
	// (0 = the engine's configured value, then 1).
	Frames int `json:"frames,omitempty"`
	Ports  int `json:"ports,omitempty"`
	// Prefetch enables configuration prefetch for the cell. It is applied
	// only when the spec carries a Prefetch axis (a bool cannot distinguish
	// "unset" from false), otherwise the engine's configuration holds.
	Prefetch bool `json:"prefetch,omitempty"`
	// Objective overrides the move-loop objective ("model" or "sim";
	// "" = the engine's configured objective).
	Objective string `json:"objective,omitempty"`
}

// Spec declares a sweep grid. Every slice is one axis of the cross product;
// an empty axis contributes a single zero-valued entry, which evaluators
// interpret as "default". The expansion order is fixed — benchmarks
// outermost, then presets, areas, CGC counts, region counts, constraints, and the
// co-simulation axes (frames, ports, prefetch, objectives) innermost — so a
// Spec always yields the same Point sequence.
type Spec struct {
	// Benchmarks lists the applications to sweep (required).
	Benchmarks []string `json:"benchmarks"`
	// Presets lists platform-variant names (optional).
	Presets []string `json:"presets,omitempty"`
	// Areas lists A_FPGA values (optional; the paper uses 1500 and 5000).
	Areas []int `json:"areas,omitempty"`
	// CGCs lists coarse-grain CGC counts (optional; the paper uses 2 and 3).
	CGCs []int `json:"cgcs,omitempty"`
	// Regions lists reconfigurable-region counts for the fine-grain fabric
	// (optional; 1 = the paper's monolithic context).
	Regions []int `json:"regions,omitempty"`
	// Constraints lists timing constraints in FPGA cycles (optional).
	Constraints []int64 `json:"constraints,omitempty"`
	// Frames, Ports, Prefetch and Objectives are the co-simulation axes:
	// frame counts, transfer-port widths, prefetch on/off and move-loop
	// objectives ("model", "sim"). Any non-empty sim axis switches the sweep
	// to simulation scoring — every cell's chosen mapping is additionally
	// replayed through the co-simulator and reported as simulated makespan
	// and speedup.
	Frames     []int    `json:"frames,omitempty"`
	Ports      []int    `json:"ports,omitempty"`
	Prefetch   []bool   `json:"prefetch,omitempty"`
	Objectives []string `json:"objectives,omitempty"`
	// Seed is the benchmark input-vector seed shared by every point.
	Seed uint32 `json:"seed"`
	// Workers bounds the evaluation pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Simulates reports whether any co-simulation axis is present, i.e. whether
// the sweep's cells are scored by the simulator in addition to the closed
// form.
func (s Spec) Simulates() bool {
	return len(s.Frames) > 0 || len(s.Ports) > 0 || len(s.Prefetch) > 0 || len(s.Objectives) > 0
}

// SimObjectiveReplayFactor is the conservative per-cell multiplier charged
// for cells whose Objective axis selects the simulation-scored move loop:
// such a cell replays the trace once per trajectory prefix, and the
// trajectory length (the number of movable kernels) is unknown before
// profiling, so cost accounting assumes this many prefixes.
const SimObjectiveReplayFactor = 32

// SimulationCost returns the sweep's cost in whole-trace replays: every
// cell costs its frame count (cells without a Frames axis, simulated or
// not, count 1), and cells driven by the "sim" objective cost
// SimObjectiveReplayFactor times that, approximating one replay per
// trajectory prefix. Operators cap on this rather than on raw cell count —
// a cell replaying 64 frames under the simulated objective costs thousands
// of closed-form cells' worth of work.
func (s Spec) SimulationCost() int {
	frames := s.Frames
	if len(frames) == 0 {
		frames = []int{1}
	}
	objectives := s.Objectives
	if len(objectives) == 0 {
		objectives = []string{""}
	}
	base := s.NumPoints() / (len(frames) * len(objectives))
	cost := 0
	for _, f := range frames {
		if f < 1 {
			f = 1
		}
		for _, o := range objectives {
			per := f
			if o == "sim" || o == "simulated" {
				per *= SimObjectiveReplayFactor
			}
			cost += base * per
		}
	}
	return cost
}

// Validate reports whether the spec describes a runnable sweep.
func (s Spec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("explore: spec needs at least one benchmark")
	}
	for _, b := range s.Benchmarks {
		if b == "" {
			return fmt.Errorf("explore: empty benchmark name")
		}
	}
	for _, a := range s.Areas {
		if a <= 0 {
			return fmt.Errorf("explore: A_FPGA must be positive, got %d", a)
		}
	}
	for _, c := range s.CGCs {
		if c <= 0 {
			return fmt.Errorf("explore: CGC count must be positive, got %d", c)
		}
	}
	for _, r := range s.Regions {
		if r <= 0 {
			return fmt.Errorf("explore: region count must be positive, got %d", r)
		}
	}
	for _, c := range s.Constraints {
		if c <= 0 {
			return fmt.Errorf("explore: timing constraint must be positive, got %d", c)
		}
	}
	for _, f := range s.Frames {
		if f <= 0 {
			return fmt.Errorf("explore: sim frame count must be positive, got %d", f)
		}
	}
	for _, p := range s.Ports {
		if p <= 0 {
			return fmt.Errorf("explore: sim port count must be positive, got %d", p)
		}
	}
	for _, o := range s.Objectives {
		switch o {
		case "model", "sim", "simulated":
		default:
			return fmt.Errorf(`explore: unknown objective %q (want "model" or "sim")`, o)
		}
	}
	if s.Workers < 0 {
		return fmt.Errorf("explore: negative worker count %d", s.Workers)
	}
	return nil
}

// NumPoints returns the size of the expanded grid.
func (s Spec) NumPoints() int {
	n := len(s.Benchmarks)
	for _, axis := range []int{len(s.Presets), len(s.Areas), len(s.CGCs), len(s.Regions), len(s.Constraints),
		len(s.Frames), len(s.Ports), len(s.Prefetch), len(s.Objectives)} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Expand crosses the axes into the deterministic Point sequence.
func (s Spec) Expand() []Point {
	presets := s.Presets
	if len(presets) == 0 {
		presets = []string{""}
	}
	areas := s.Areas
	if len(areas) == 0 {
		areas = []int{0}
	}
	cgcs := s.CGCs
	if len(cgcs) == 0 {
		cgcs = []int{0}
	}
	regions := s.Regions
	if len(regions) == 0 {
		regions = []int{0}
	}
	constraints := s.Constraints
	if len(constraints) == 0 {
		constraints = []int64{0}
	}
	frames := s.Frames
	if len(frames) == 0 {
		frames = []int{0}
	}
	ports := s.Ports
	if len(ports) == 0 {
		ports = []int{0}
	}
	prefetch := s.Prefetch
	if len(prefetch) == 0 {
		prefetch = []bool{false}
	}
	objectives := s.Objectives
	if len(objectives) == 0 {
		objectives = []string{""}
	}
	points := make([]Point, 0, s.NumPoints())
	for _, bench := range s.Benchmarks {
		for _, preset := range presets {
			for _, area := range areas {
				for _, ncgc := range cgcs {
					for _, reg := range regions {
						for _, c := range constraints {
							for _, fr := range frames {
								for _, po := range ports {
									for _, pf := range prefetch {
										for _, obj := range objectives {
											points = append(points, Point{
												Index:      len(points),
												Benchmark:  bench,
												Preset:     preset,
												AFPGA:      area,
												NumCGCs:    ncgc,
												Regions:    reg,
												Constraint: c,
												Frames:     fr,
												Ports:      po,
												Prefetch:   pf,
												Objective:  obj,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return points
}

// Outcome is the evaluated result of one Point: the rows of the paper's
// Tables 2–3 plus the derived speedup. A failed evaluation records the
// error text in Err and leaves the metrics zero.
type Outcome struct {
	Point

	// InitialCycles is the all-FPGA execution time; InitialPartitions the
	// number of configuration bit-streams of that mapping.
	InitialCycles     int64 `json:"initial_cycles"`
	InitialPartitions int   `json:"initial_partitions"`
	// CyclesInCGC is the time spent on the coarse-grain data-path, in
	// FPGA-cycle units.
	CyclesInCGC int64 `json:"cycles_in_cgc"`
	// FinalCycles is t_total after partitioning; TFPGA, TCoarse and TComm
	// are its eq. 2 components.
	FinalCycles int64 `json:"final_cycles"`
	TFPGA       int64 `json:"t_fpga"`
	TCoarse     int64 `json:"t_coarse"`
	TComm       int64 `json:"t_comm"`
	// EffectiveAFPGA, EffectiveCGCs and EffectiveConstraint are the values
	// actually applied after defaulting (a zero Point axis resolves to the
	// preset's / benchmark's value).
	EffectiveAFPGA      int   `json:"effective_afpga"`
	EffectiveCGCs       int   `json:"effective_cgcs"`
	EffectiveRegions    int   `json:"effective_regions,omitempty"`
	EffectiveConstraint int64 `json:"effective_constraint"`
	// Met reports whether the constraint was satisfied.
	Met bool `json:"met"`
	// Moved lists the basic blocks accelerated on the CGC data-path, in
	// move order.
	Moved []int `json:"moved,omitempty"`
	// ReductionPct is the % cycle reduction over the all-FPGA mapping;
	// Speedup is InitialCycles/FinalCycles.
	ReductionPct float64 `json:"reduction_pct"`
	Speedup      float64 `json:"speedup"`
	// Simulated marks a cell scored by the co-simulator (any sim axis in the
	// spec, or a simulating engine configuration). SimCycles is the chosen
	// mapping's simulated makespan, SimBaselineCycles the simulated all-FPGA
	// makespan, and SimSpeedup their ratio — the executed counterpart of
	// Speedup. EffectiveFrames, EffectivePorts and EffectiveObjective are
	// the resolved co-simulation operating point.
	Simulated          bool    `json:"simulated,omitempty"`
	SimCycles          int64   `json:"sim_cycles,omitempty"`
	SimBaselineCycles  int64   `json:"sim_baseline_cycles,omitempty"`
	SimSpeedup         float64 `json:"sim_speedup,omitempty"`
	EffectiveFrames    int     `json:"effective_frames,omitempty"`
	EffectivePorts     int     `json:"effective_ports,omitempty"`
	EffectivePrefetch  bool    `json:"effective_prefetch,omitempty"`
	EffectiveObjective string  `json:"effective_objective,omitempty"`
	// Err carries the evaluation error, if any.
	Err string `json:"err,omitempty"`
}

// Failed reports whether the point's evaluation errored.
func (o Outcome) Failed() bool { return o.Err != "" }

// AreaUsed returns the effective A_FPGA of the evaluation, falling back to
// the raw axis value for evaluators that do not report it.
func (o Outcome) AreaUsed() int {
	if o.EffectiveAFPGA > 0 {
		return o.EffectiveAFPGA
	}
	return o.AFPGA
}

// CGCsUsed returns the effective CGC count of the evaluation, falling back
// to the raw axis value for evaluators that do not report it.
func (o Outcome) CGCsUsed() int {
	if o.EffectiveCGCs > 0 {
		return o.EffectiveCGCs
	}
	return o.NumCGCs
}

// Evaluator maps one configuration point to its outcome. Run calls it from
// multiple goroutines, so implementations must be safe for concurrent use.
type Evaluator func(Point) (Outcome, error)

// Progress observes completed cells. Run invokes it strictly in expansion
// order — outcome i is reported only after outcomes 0..i-1 — regardless of
// the order the worker pool finishes them, and never concurrently, so the
// callback needs no synchronization of its own. done counts reported cells
// (1-based) and total is the grid size.
type Progress func(o Outcome, done, total int)

// Run expands the spec and evaluates every point on a pool of
// min(spec.Workers, #points) goroutines (GOMAXPROCS workers when
// spec.Workers is 0). Evaluation errors do not abort the sweep: they are
// recorded per point in Outcome.Err so one infeasible cell cannot discard
// the rest of the grid. Outcomes are stored in expansion order, making the
// ResultSet bit-identical for any worker count.
//
// Cancelling ctx aborts the sweep: queued cells are never started,
// in-flight evaluations finish (or bail at their own cancellation points
// when the evaluator honors ctx), and Run returns ctx.Err() together with a
// partial ResultSet — Partial set, Outcomes holding only the cells whose
// evaluation actually completed (successes and genuine per-cell failures),
// in expansion order; cells interrupted mid-evaluation by the cancellation
// itself are omitted rather than reported as failures. A context cancelled
// before anything ran yields a nil ResultSet. A nil ctx means
// context.Background().
func Run(ctx context.Context, spec Spec, eval Evaluator) (*ResultSet, error) {
	return RunObserved(ctx, spec, eval, nil)
}

// RunObserved is Run with a per-cell progress callback (nil is allowed and
// equivalent to Run).
func RunObserved(ctx context.Context, spec Spec, eval Evaluator, progress Progress) (*ResultSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("explore: nil evaluator")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	points := spec.Expand()
	outcomes := make([]Outcome, len(points))

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	// Completed cells are reported in expansion order through a reassembly
	// cursor: a finished cell is parked until every earlier cell has been
	// reported, which makes the Progress stream deterministic for any worker
	// count. After cancellation nothing further is reported, but completion
	// is still recorded — the partial ResultSet is built from it.
	var emitMu sync.Mutex
	finished := make([]bool, len(points))
	cursor, reported := 0, 0
	complete := func(i int) {
		emitMu.Lock()
		defer emitMu.Unlock()
		finished[i] = true
		if progress == nil || ctx.Err() != nil {
			return
		}
		// Re-check cancellation per emission: the callback itself may cancel
		// (the "stop after N cells" pattern) and must then hear nothing more.
		for cursor < len(points) && finished[cursor] && ctx.Err() == nil {
			reported++
			progress(outcomes[cursor], reported, len(points))
			cursor++
		}
	}

	// partial collects the completed cells of a cancelled sweep, in
	// expansion order. Called only after wg.Wait(), when no worker can
	// still be writing.
	partial := func(err error) (*ResultSet, error) {
		rs := &ResultSet{Spec: spec, Partial: true}
		for i, done := range finished {
			if done {
				rs.Outcomes = append(rs.Outcomes, outcomes[i])
			}
		}
		return rs, err
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the sweep is being abandoned
				}
				o, err := eval(points[i])
				if err != nil {
					// An in-flight cell interrupted by the sweep's own
					// cancellation is unevaluated, not failed: leave it
					// unfinished so the partial ResultSet and failure
					// listings never report the user's Ctrl-C as a
					// per-cell error.
					if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
						continue
					}
					o = Outcome{Point: points[i], Err: err.Error()}
				} else {
					o.Point = points[i]
				}
				outcomes[i] = o
				complete(i)
			}
		}()
	}
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return partial(ctx.Err())
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return partial(err)
	}
	return &ResultSet{Spec: spec, Outcomes: outcomes}, nil
}
