package platform

import (
	"fmt"
	"sort"
	"sync"
)

// Config is a named platform variant: a complete characterization plus the
// registry metadata the exploration engine and CLIs surface to users.
type Config struct {
	// Name is the registry key (stable, flag-friendly).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Platform is the full characterization of the variant.
	Platform Platform
}

var (
	regMu    sync.RWMutex
	registry = map[string]Config{}
)

// Register adds a named variant to the registry. The name must be non-empty
// and unused, and the platform must validate.
func Register(c Config) error {
	if c.Name == "" {
		return fmt.Errorf("platform: config needs a name")
	}
	if err := c.Platform.Validate(); err != nil {
		return fmt.Errorf("platform: config %q: %w", c.Name, err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		return fmt.Errorf("platform: config %q already registered", c.Name)
	}
	registry[c.Name] = c
	return nil
}

// Lookup returns the named variant and whether it exists.
func Lookup(name string) (Config, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// Names returns the sorted registry keys.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DSPRichOpCosts returns a cost table for fabrics with hard multiplier
// blocks (DSP slices): multiplies cost the same area as an ALU and finish
// in one cycle, so multiply-rich kernels stop dominating the area budget.
func DSPRichOpCosts() OpCosts {
	return OpCosts{
		AreaALU: 32, AreaMul: 32, AreaDiv: 256, AreaMem: 32,
		LatALU: 1, LatMul: 1, LatDiv: 8, LatMem: 1,
	}
}

// LUTOnlyOpCosts returns a conservative cost table for plain LUT fabrics
// without multiplier macros: multipliers are 6× the ALU area and take three
// cycles, dividers 16× — the regime where temporal partitioning is
// stressed hardest.
func LUTOnlyOpCosts() OpCosts {
	return OpCosts{
		AreaALU: 32, AreaMul: 192, AreaDiv: 512, AreaMem: 32,
		LatALU: 1, LatMul: 3, LatDiv: 12, LatMem: 1,
	}
}

// withCosts returns p with its fine-grain cost table replaced.
func withCosts(p Platform, c OpCosts) Platform {
	p.Fine.Costs = c
	return p
}

func init() {
	for _, c := range []Config{
		{
			Name:     "paper-small",
			Summary:  "paper baseline: A_FPGA=1500, two 2x2 CGCs, default LUT costs",
			Platform: Paper(1500, 2),
		},
		{
			Name:     "paper-large",
			Summary:  "paper large FPGA: A_FPGA=5000, two 2x2 CGCs",
			Platform: Paper(5000, 2),
		},
		{
			Name:     "dsp-rich",
			Summary:  "hard-multiplier fabric: MUL costs ALU area, single-cycle",
			Platform: withCosts(Paper(1500, 2), DSPRichOpCosts()),
		},
		{
			Name:     "lut-only",
			Summary:  "conservative LUT-only fabric: MUL 6x ALU area, 3-cycle",
			Platform: withCosts(Paper(1500, 2), LUTOnlyOpCosts()),
		},
	} {
		if err := Register(c); err != nil {
			panic(err)
		}
	}
}
