package platform

import (
	"reflect"
	"testing"
)

func TestBuiltinPresets(t *testing.T) {
	names := Names()
	for _, want := range []string{"paper-small", "paper-large", "dsp-rich", "lut-only"} {
		cfg, ok := Lookup(want)
		if !ok {
			t.Fatalf("built-in preset %q missing (have %v)", want, names)
		}
		if cfg.Name != want || cfg.Summary == "" {
			t.Fatalf("preset %q malformed: %+v", want, cfg)
		}
		if err := cfg.Platform.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", want, err)
		}
	}
	if !reflect.DeepEqual(names, append([]string(nil), names...)) || !isSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
}

func isSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestRegisterRejectsBadConfigs(t *testing.T) {
	if err := Register(Config{Name: "", Platform: Default()}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(Config{Name: "paper-small", Platform: Default()}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	bad := Default()
	bad.Fine.Area = -1
	if err := Register(Config{Name: "bad", Platform: bad}); err == nil {
		t.Fatal("invalid platform accepted")
	}
	if _, ok := Lookup("bad"); ok {
		t.Fatal("rejected config leaked into registry")
	}
}

func TestCostTablePresets(t *testing.T) {
	def, dsp, lut := DefaultOpCosts(), DSPRichOpCosts(), LUTOnlyOpCosts()
	if dsp.AreaMul >= def.AreaMul || dsp.LatMul >= def.LatMul {
		t.Fatalf("dsp-rich multipliers not cheaper than default: %+v vs %+v", dsp, def)
	}
	if lut.AreaMul <= def.AreaMul || lut.LatMul <= def.LatMul {
		t.Fatalf("lut-only multipliers not costlier than default: %+v vs %+v", lut, def)
	}
	for _, p := range []Platform{
		withCosts(Default(), dsp),
		withCosts(Default(), lut),
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("cost preset invalid: %v", err)
		}
	}
}
