// Package platform describes the generic hybrid reconfigurable platform of
// the paper's Figure 1: a fine-grain (embedded FPGA) block, a coarse-grain
// CGC data-path, a shared data memory and the interconnect between them,
// all characterized "in terms of timing and area" as the methodology
// requires. Every mapper and the partitioning engine are parameterized by
// these tables, which keeps the flow retargetable — the property the paper
// claims for its framework.
package platform

import (
	"fmt"

	"hybridpart/internal/ir"
)

// OpCosts characterizes the fine-grain fabric per operation class: the area
// an operator instance occupies (abstract FPGA area units, the same units as
// A_FPGA) and its latency in FPGA clock cycles.
type OpCosts struct {
	AreaALU int
	AreaMul int
	AreaDiv int
	AreaMem int

	LatALU int
	LatMul int
	LatDiv int
	LatMem int
}

// DefaultOpCosts returns the characterization used throughout the
// experiments: multipliers are 4× the area of an ALU (typical for LUT-based
// multipliers vs. adders) and take two cycles; memory ports cost as much
// logic as an ALU. The absolute scale is chosen so that the benchmark's
// hottest basic blocks straddle temporal partitions at A_FPGA = 1500 but
// fit comfortably at 5000, the regime the paper's Tables 2–3 explore.
func DefaultOpCosts() OpCosts {
	return OpCosts{
		AreaALU: 32, AreaMul: 128, AreaDiv: 256, AreaMem: 32,
		LatALU: 1, LatMul: 2, LatDiv: 8, LatMem: 1,
	}
}

// IsZero reports whether the table is the zero value, i.e. no
// characterization was supplied at all. Callers that default a zero table
// must use this helper rather than comparing against OpCosts{} inline, so
// the "unset" test is a single, documented decision point: a table with any
// field set — even a deliberately cheap one — is never mistaken for unset,
// and a genuinely all-zero table fails Platform.Validate with a precise
// diagnostic instead of being silently replaced downstream.
func (oc OpCosts) IsZero() bool { return oc == OpCosts{} }

// FineGrain characterizes the embedded FPGA block.
type FineGrain struct {
	// Area is A_FPGA: the usable area for mapped operators, already
	// discounted for routability (the paper uses ~70% of the raw fabric and
	// then reports A_FPGA ∈ {1500, 5000} directly).
	Area int
	// ReconfigCycles is the full-reconfiguration cost charged once per
	// temporal partition, in FPGA cycles ("the reconfiguration time has the
	// same value for each partition and it is added to the execution time of
	// each temporal partition").
	ReconfigCycles int
	// Regions is the number of independently reconfigurable regions the
	// fabric is split into (partial dynamic reconfiguration). 0 or 1 is the
	// paper's monolithic context: every swap replaces the whole fabric. With
	// R > 1 the area splits evenly across R regions, each region swaps in
	// RegionReconfigCycles (the full-fabric cost divided across regions, as
	// PDR bitstreams scale with region size), and temporal partitions
	// resident in different regions coexist instead of evicting each other.
	// Loads still serialize on the single configuration port.
	Regions int
	// Costs is the per-operator characterization.
	Costs OpCosts
}

// NumRegions normalizes Regions: 0 (unset) and 1 both mean one monolithic
// context.
func (f FineGrain) NumRegions() int {
	if f.Regions <= 1 {
		return 1
	}
	return f.Regions
}

// RegionArea is the usable area of one reconfigurable region — the packing
// bound for a single temporal partition. With one region it is Area itself.
func (f FineGrain) RegionArea() int { return f.Area / f.NumRegions() }

// RegionReconfigCycles is the cost of swapping one region, in FPGA cycles:
// the full-fabric cost split across regions (rounded up), since a partial
// bitstream is proportionally smaller. With one region it is ReconfigCycles.
func (f FineGrain) RegionReconfigCycles() int {
	r := f.NumRegions()
	return (f.ReconfigCycles + r - 1) / r
}

// Area returns the fine-grain area of one operator of class c. Calls have
// no fine-grain realization and report zero (the standard flow inlines them
// away before mapping).
func (oc OpCosts) Area(c ir.Class) int {
	switch c {
	case ir.ClassMul:
		return oc.AreaMul
	case ir.ClassDiv:
		return oc.AreaDiv
	case ir.ClassMem:
		return oc.AreaMem
	case ir.ClassCall:
		return 0
	default:
		return oc.AreaALU
	}
}

// Latency returns the fine-grain latency (FPGA cycles) of class c.
func (oc OpCosts) Latency(c ir.Class) int {
	switch c {
	case ir.ClassMul:
		return oc.LatMul
	case ir.ClassDiv:
		return oc.LatDiv
	case ir.ClassMem:
		return oc.LatMem
	case ir.ClassCall:
		return 0
	default:
		return oc.LatALU
	}
}

// CoarseGrain characterizes the CGC data-path of the FPL'04 companion work:
// NumCGCs arrays of Rows×Cols nodes (each node a multiplier + ALU, one
// active per cycle), a steering interconnect that lets data flow row to row
// within a single T_CGC cycle (unit execution delay per configured CGC), a
// register bank, and shared-memory ports.
type CoarseGrain struct {
	NumCGCs int
	Rows    int // n: chained operations executed within one cycle
	Cols    int // m: independent chains per CGC
	// MemPorts is the number of shared-data-memory transfers the data-path
	// can issue per CGC cycle.
	MemPorts int
	// ClockRatio is T_FPGA / T_CGC; the paper assumes 3 ("a rather moderate
	// assumption for the performance gain of an ASIC technology compared to
	// an FPGA one").
	ClockRatio int
	// RegBankWords sizes the data-path's register bank. Arrays no larger
	// than this live in the bank while a kernel executes, so their
	// loads/stores are register-file accesses routed by the interconnect
	// (no shared-memory port, no extra cycle); larger arrays stream through
	// the MemPorts.
	RegBankWords int
}

// SlotsPerCycle returns the maximum number of ALU/MUL operations the whole
// data-path can retire per CGC cycle.
func (cg CoarseGrain) SlotsPerCycle() int { return cg.NumCGCs * cg.Rows * cg.Cols }

// Comm characterizes fine↔coarse communication through the shared data
// memory. Arrays live in the shared memory and are visible to both fabrics;
// what crosses on every kernel invocation are its scalar live-ins/live-outs
// plus a fixed synchronization cost.
type Comm struct {
	// CyclesPerWord is the FPGA-cycle cost of moving one 32-bit scalar
	// through the shared memory.
	CyclesPerWord int
	// SyncCycles is the fixed per-invocation handoff cost (control transfer
	// between the fabrics).
	SyncCycles int
}

// Platform bundles the full characterization of the hybrid architecture.
type Platform struct {
	Fine   FineGrain
	Coarse CoarseGrain
	Comm   Comm
}

// Default returns the baseline platform used by the experiments:
// A_FPGA = 1500, two 2×2 CGCs, T_FPGA = 3·T_CGC.
func Default() Platform {
	return Paper(1500, 2)
}

// Paper returns the platform of the paper's evaluation for a given A_FPGA
// (1500 or 5000 in Tables 2–3) and CGC count (two or three 2×2 CGCs).
func Paper(afpga, numCGCs int) Platform {
	return Platform{
		Fine: FineGrain{
			Area:           afpga,
			ReconfigCycles: 32,
			Costs:          DefaultOpCosts(),
		},
		Coarse: CoarseGrain{
			NumCGCs:      numCGCs,
			Rows:         2,
			Cols:         2,
			MemPorts:     2,
			ClockRatio:   3,
			RegBankWords: 256,
		},
		Comm: Comm{CyclesPerWord: 1, SyncCycles: 2},
	}
}

// Validate checks that every parameter is physically meaningful.
func (p Platform) Validate() error {
	f := p.Fine
	if f.Area <= 0 {
		return fmt.Errorf("platform: A_FPGA must be positive, got %d", f.Area)
	}
	if f.ReconfigCycles < 0 {
		return fmt.Errorf("platform: negative reconfiguration cost")
	}
	if f.Regions < 0 {
		return fmt.Errorf("platform: regions must be non-negative, got %d", f.Regions)
	}
	c := f.Costs
	for _, v := range []struct {
		name string
		val  int
	}{
		{"AreaALU", c.AreaALU}, {"AreaMul", c.AreaMul}, {"AreaDiv", c.AreaDiv}, {"AreaMem", c.AreaMem},
		{"LatALU", c.LatALU}, {"LatMul", c.LatMul}, {"LatDiv", c.LatDiv}, {"LatMem", c.LatMem},
	} {
		if v.val <= 0 {
			return fmt.Errorf("platform: %s must be positive, got %d", v.name, v.val)
		}
	}
	maxArea := c.AreaALU
	for _, a := range []int{c.AreaMul, c.AreaDiv, c.AreaMem} {
		if a > maxArea {
			maxArea = a
		}
	}
	if maxArea > f.Area {
		return fmt.Errorf("platform: largest operator (%d units) exceeds A_FPGA (%d)", maxArea, f.Area)
	}
	if ra := f.RegionArea(); maxArea > ra {
		return fmt.Errorf("platform: largest operator (%d units) exceeds the per-region area (%d = A_FPGA %d / %d regions)",
			maxArea, ra, f.Area, f.NumRegions())
	}
	cg := p.Coarse
	if cg.NumCGCs <= 0 || cg.Rows <= 0 || cg.Cols <= 0 {
		return fmt.Errorf("platform: CGC data-path must have positive dimensions (%d of %dx%d)",
			cg.NumCGCs, cg.Rows, cg.Cols)
	}
	if cg.MemPorts <= 0 {
		return fmt.Errorf("platform: coarse-grain fabric needs at least one memory port")
	}
	if cg.RegBankWords < 0 {
		return fmt.Errorf("platform: negative register bank size")
	}
	if cg.ClockRatio <= 0 {
		return fmt.Errorf("platform: clock ratio must be positive, got %d", cg.ClockRatio)
	}
	if p.Comm.CyclesPerWord < 0 || p.Comm.SyncCycles < 0 {
		return fmt.Errorf("platform: negative communication cost")
	}
	return nil
}

// String summarizes the platform for reports (Figure 1's components).
func (p Platform) String() string {
	if r := p.Fine.NumRegions(); r > 1 {
		return fmt.Sprintf(
			"hybrid platform: FPGA{A=%d units, %d regions of %d, reconfig=%d cyc/region} + CGC{%d x %dx%d, Tfpga=%d*Tcgc, %d mem ports} + shared-mem{%d cyc/word, sync %d}",
			p.Fine.Area, r, p.Fine.RegionArea(), p.Fine.RegionReconfigCycles(),
			p.Coarse.NumCGCs, p.Coarse.Rows, p.Coarse.Cols, p.Coarse.ClockRatio, p.Coarse.MemPorts,
			p.Comm.CyclesPerWord, p.Comm.SyncCycles)
	}
	return fmt.Sprintf(
		"hybrid platform: FPGA{A=%d units, reconfig=%d cyc} + CGC{%d x %dx%d, Tfpga=%d*Tcgc, %d mem ports} + shared-mem{%d cyc/word, sync %d}",
		p.Fine.Area, p.Fine.ReconfigCycles,
		p.Coarse.NumCGCs, p.Coarse.Rows, p.Coarse.Cols, p.Coarse.ClockRatio, p.Coarse.MemPorts,
		p.Comm.CyclesPerWord, p.Comm.SyncCycles)
}
