package platform

import (
	"strings"
	"testing"

	"hybridpart/internal/ir"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	for _, afpga := range []int{1500, 5000} {
		for _, n := range []int{2, 3} {
			if err := Paper(afpga, n).Validate(); err != nil {
				t.Errorf("Paper(%d,%d) invalid: %v", afpga, n, err)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(*Platform)
	}{
		{"zero area", func(p *Platform) { p.Fine.Area = 0 }},
		{"negative reconfig", func(p *Platform) { p.Fine.ReconfigCycles = -1 }},
		{"zero ALU area", func(p *Platform) { p.Fine.Costs.AreaALU = 0 }},
		{"zero mul latency", func(p *Platform) { p.Fine.Costs.LatMul = 0 }},
		{"op bigger than fabric", func(p *Platform) { p.Fine.Area = 10; p.Fine.Costs.AreaMul = 32 }},
		{"no CGCs", func(p *Platform) { p.Coarse.NumCGCs = 0 }},
		{"zero rows", func(p *Platform) { p.Coarse.Rows = 0 }},
		{"zero cols", func(p *Platform) { p.Coarse.Cols = 0 }},
		{"no mem ports", func(p *Platform) { p.Coarse.MemPorts = 0 }},
		{"zero clock ratio", func(p *Platform) { p.Coarse.ClockRatio = 0 }},
		{"negative comm", func(p *Platform) { p.Comm.CyclesPerWord = -1 }},
	}
	for _, m := range mutate {
		p := Default()
		m.fn(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad platform", m.name)
		}
	}
}

func TestOpCostsLookup(t *testing.T) {
	c := DefaultOpCosts()
	if c.Area(ir.ClassMul) != c.AreaMul || c.Area(ir.ClassALU) != c.AreaALU ||
		c.Area(ir.ClassMem) != c.AreaMem || c.Area(ir.ClassDiv) != c.AreaDiv {
		t.Fatal("Area lookup broken")
	}
	if c.Latency(ir.ClassMul) != c.LatMul || c.Latency(ir.ClassALU) != c.LatALU {
		t.Fatal("Latency lookup broken")
	}
	if c.Area(ir.ClassCall) != 0 || c.Latency(ir.ClassCall) != 0 {
		t.Fatal("calls must cost nothing (inlined before mapping)")
	}
}

func TestSlotsPerCycle(t *testing.T) {
	p := Paper(1500, 3)
	if got := p.Coarse.SlotsPerCycle(); got != 3*2*2 {
		t.Fatalf("SlotsPerCycle = %d, want 12", got)
	}
}

func TestStringMentionsComponents(t *testing.T) {
	s := Default().String()
	for _, part := range []string{"FPGA", "CGC", "shared-mem"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q lacks %q", s, part)
		}
	}
}

func TestOpCostsIsZero(t *testing.T) {
	if !(OpCosts{}).IsZero() {
		t.Fatal("zero value not detected")
	}
	if DefaultOpCosts().IsZero() {
		t.Fatal("default table reported as zero")
	}
	// Any single field set means "supplied", even a mostly-free table.
	if (OpCosts{LatALU: 1}).IsZero() {
		t.Fatal("partially-set table reported as zero")
	}
}
