package hybridpart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the model↔simulator agreement suite: randomized (seeded,
// logged) properties that pin the simulation-scored move loop to the
// discrete-event simulator and the simulator to the analytical model as
// both evolve. The four properties:
//
//	(a) the simulated objective never loses to the model objective on its
//	    own metric — simulated makespan;
//	(b) contention-free single-frame runs still agree with the analytical
//	    model cycle for cycle (the PR-4 exactness invariant survives the
//	    move-loop refactor);
//	(c) prefetch is never slower;
//	(d) re-ranking every prefix is the simulated objective (rerank k = -1
//	    and ObjectiveSimulated choose identical mappings and makespans).
//
// Plus the implementation invariant behind them all: the closed-form and
// incremental fast paths score exactly what the full event replay scores.

// propertySeeds are the logged RNG seeds every property runs under. Fixed
// seeds keep failures reproducible; the t.Logf lines name the seed and the
// drawn configuration so a red run can be replayed verbatim.
var propertySeeds = []int64{1, 2, 3}

// propertyConfig is one randomized operating point.
type propertyConfig struct {
	area       int
	frames     int
	ports      int
	prefetch   bool
	constraint int64
	maxMoves   int
	regions    int
}

func drawConfig(rng *rand.Rand) propertyConfig {
	areas := []int{768, 1000, 1500, 2200, 3000, 5000}
	framesChoices := []int{1, 2, 4, 8}
	constraints := []int64{1, 30000, 60000, 120000}
	regionsChoices := []int{1, 2, 4}
	c := propertyConfig{
		area:       areas[rng.Intn(len(areas))],
		frames:     framesChoices[rng.Intn(len(framesChoices))],
		ports:      1 + rng.Intn(3),
		prefetch:   rng.Intn(2) == 1,
		constraint: constraints[rng.Intn(len(constraints))],
		maxMoves:   rng.Intn(9), // 0 = unlimited
		regions:    regionsChoices[rng.Intn(len(regionsChoices))],
	}
	if c.regions == 4 && c.area < 1024 {
		c.regions = 2 // the per-region area must still fit the largest operator (256 units)
	}
	return c
}

func (c propertyConfig) String() string {
	return fmt.Sprintf("area=%d frames=%d ports=%d prefetch=%v constraint=%d maxmoves=%d regions=%d",
		c.area, c.frames, c.ports, c.prefetch, c.constraint, c.maxMoves, c.regions)
}

func (c propertyConfig) engineOpts(extra ...Option) []Option {
	opts := []Option{
		WithArea(c.area),
		WithConstraint(c.constraint),
		WithSimFrames(c.frames),
		WithSimPorts(c.ports),
		WithSimPrefetch(c.prefetch),
	}
	if c.maxMoves > 0 {
		opts = append(opts, WithMaxMoves(c.maxMoves))
	}
	if c.regions > 1 {
		// regions == 1 deliberately leaves Regions unset: monolithic draws
		// keep exercising the untouched legacy configuration.
		opts = append(opts, WithRegions(c.regions))
	}
	return append(opts, extra...)
}

func partitionWith(t *testing.T, app *App, prof *RunProfile, opts ...Option) *Result {
	t.Helper()
	eng, err := NewEngine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.PartitionProfiled(context.Background(), app, prof)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObjectiveSimulatedBeatsModelOFDM is the acceptance pin: on OFDM with
// 8 pipelined frames, both the full simulated objective and rerank(3) find
// a partition whose simulated makespan is strictly lower than the one the
// closed-form model objective picks — the estimation-vs-execution gap the
// feedback loop exists to close.
func TestObjectiveSimulatedBeatsModelOFDM(t *testing.T) {
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithConstraint(60000), WithSimFrames(8)}
	model := partitionWith(t, app, prof, base...)
	if model.SimulatedCycles == 0 {
		t.Fatal("model-objective run did not report a simulated makespan")
	}
	simObj := partitionWith(t, app, prof, append(base, WithObjective(ObjectiveSimulated))...)
	if simObj.SimulatedCycles >= model.SimulatedCycles {
		t.Fatalf("simulated objective did not improve: %d >= %d (moved %v vs %v)",
			simObj.SimulatedCycles, model.SimulatedCycles, simObj.Moved, model.Moved)
	}
	rerank := partitionWith(t, app, prof, append(base, WithRerank(3))...)
	if rerank.SimulatedCycles >= model.SimulatedCycles {
		t.Fatalf("rerank(3) did not improve: %d >= %d", rerank.SimulatedCycles, model.SimulatedCycles)
	}
	t.Logf("OFDM x8 frames: model objective %d cycles (speedup %.3f), simulated objective %d (%.3f), rerank(3) %d",
		model.SimulatedCycles, model.SimulatedSpeedup, simObj.SimulatedCycles, simObj.SimulatedSpeedup,
		rerank.SimulatedCycles)
}

// TestSimPropertyObjectiveNotWorse is property (a): across randomized
// operating points the simulated objective's makespan is never above the
// model objective's — the model's choice is always in the simulated
// objective's candidate set.
func TestSimPropertyObjectiveNotWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4; i++ {
			cfg := drawConfig(rng)
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			model := partitionWith(t, app, prof, cfg.engineOpts()...)
			sim := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			if sim.SimulatedCycles > model.SimulatedCycles {
				t.Fatalf("seed=%d %s: simulated objective worse: %d > %d",
					seed, cfg, sim.SimulatedCycles, model.SimulatedCycles)
			}
			rr := partitionWith(t, app, prof, cfg.engineOpts(WithRerank(1+rng.Intn(4)))...)
			if rr.SimulatedCycles > model.SimulatedCycles {
				t.Fatalf("seed=%d %s: rerank worse than model: %d > %d",
					seed, cfg, rr.SimulatedCycles, model.SimulatedCycles)
			}
		}
	}
}

// TestSimPropertyExactnessPreserved is property (b): on contention-free
// single-frame no-prefetch configurations the simulation-scored loop agrees
// with the model wherever the model's idealizations hold. Concretely, for
// every randomized area × moved-set: the loop's score is exactly what an
// independent Engine.Simulate of the chosen mapping measures (the loop
// optimizes precisely the simulator's metric); the all-FPGA baseline is
// always exact against the model (no moved blocks, so the crossing rules
// coincide); and whenever the replay performs exactly the configuration
// loads the model charges, the partitioned makespan is the model's t_total
// cycle for cycle. (Unconditional exactness on the paper's own operating
// points stays pinned by TestSimulateModelParity, unchanged since PR 4 —
// mappings whose loads and crossings diverge are a documented model
// idealization, spelled out in the report's validation notes.)
func TestSimPropertyExactnessPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for _, bench := range Benchmarks() {
		app, prof, err := ProfileBenchmarkCached(bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		draws := 4
		if bench == BenchJPEG {
			draws = 1 // the JPEG trace is long; one draw per seed keeps the suite quick
		}
		exactSeen := false
		for _, seed := range propertySeeds {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < draws; i++ {
				cfg := drawConfig(rng)
				cfg.frames, cfg.ports, cfg.prefetch = 1, 1, false
				cfg.regions = 1 // model exactness is a monolithic-context claim
				t.Logf("bench=%s seed=%d draw=%d %s", bench, seed, i, cfg)
				eng, err := NewEngine(cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.PartitionProfiled(context.Background(), app, prof)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := eng.SimulateProfiled(context.Background(), app, prof)
				if err != nil {
					t.Fatal(err)
				}
				if res.SimulatedCycles != rep.TotalCycles {
					t.Fatalf("bench=%s seed=%d %s: loop scored %d, simulator measures %d",
						bench, seed, cfg, res.SimulatedCycles, rep.TotalCycles)
				}
				if res.SimulatedBaselineCycles != rep.BaselineCycles {
					t.Fatalf("bench=%s seed=%d %s: loop baseline %d, simulator %d",
						bench, seed, cfg, res.SimulatedBaselineCycles, rep.BaselineCycles)
				}
				if rep.BaselineCycles != res.InitialCycles {
					t.Fatalf("bench=%s seed=%d %s: simulated baseline %d != model all-FPGA %d",
						bench, seed, cfg, rep.BaselineCycles, res.InitialCycles)
				}
				if rep.Reconfigs == rep.ModelCrossings {
					exactSeen = true
					if res.SimulatedCycles != res.FinalCycles {
						t.Fatalf("bench=%s seed=%d %s: loads match crossings yet simulated %d != t_total %d",
							bench, seed, cfg, res.SimulatedCycles, res.FinalCycles)
					}
				}
			}
		}
		if !exactSeen {
			t.Errorf("bench=%s: no draw exercised the exact-agreement branch", bench)
		}
	}
}

// TestSimPropertyPrefetchNeverSlower is property (c): for randomized
// areas × moved-sets × frames × ports, enabling configuration prefetch
// never increases the simulated makespan.
func TestSimPropertyPrefetchNeverSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4; i++ {
			cfg := drawConfig(rng)
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			off := partitionWith(t, app, prof, cfg.engineOpts(WithSimPrefetch(false))...)
			on := partitionWith(t, app, prof, cfg.engineOpts(WithSimPrefetch(true))...)
			if on.SimulatedCycles > off.SimulatedCycles {
				t.Fatalf("seed=%d %s: prefetch slower: %d > %d",
					seed, cfg, on.SimulatedCycles, off.SimulatedCycles)
			}
		}
	}
}

// TestSimPropertyRerankAllEquivalent is property (d): re-ranking every
// prefix (k = -1, and any k at least the trajectory length) is the full
// simulated objective — identical chosen mapping, identical makespan.
func TestSimPropertyRerankAllEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			cfg := drawConfig(rng)
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			full := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			for _, k := range []int{-1, 10000} {
				rr := partitionWith(t, app, prof, cfg.engineOpts(WithRerank(k))...)
				if rr.SimulatedCycles != full.SimulatedCycles || fmt.Sprint(rr.Moved) != fmt.Sprint(full.Moved) {
					t.Fatalf("seed=%d %s rerank(%d): moved %v sim %d, want moved %v sim %d",
						seed, cfg, k, rr.Moved, rr.SimulatedCycles, full.Moved, full.SimulatedCycles)
				}
			}
		}
	}
}

// TestSimPropertyFastPathMatchesReplay pins the closed-form and incremental
// scoring tiers to the full discrete-event replay: with the fast paths
// disabled, every randomized single-frame run must choose the same mapping
// with the same makespan — and the enabled runs must actually have used the
// fast paths.
func TestSimPropertyFastPathMatchesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			cfg := drawConfig(rng)
			cfg.frames, cfg.prefetch = 1, false // the fast-path regime
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			fast := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			if fast.SimStats.Replays != 0 || fast.SimStats.ClosedForm+fast.SimStats.Incremental == 0 {
				t.Fatalf("seed=%d %s: fast path not exercised: %+v", seed, cfg, fast.SimStats)
			}
			debugDisableSimFastPath = true
			slow := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			debugDisableSimFastPath = false
			if slow.SimStats.ClosedForm+slow.SimStats.Incremental != 0 {
				t.Fatalf("seed=%d %s: fast path ran while disabled: %+v", seed, cfg, slow.SimStats)
			}
			if fast.SimulatedCycles != slow.SimulatedCycles || fmt.Sprint(fast.Moved) != fmt.Sprint(slow.Moved) {
				t.Fatalf("seed=%d %s: fast path diverges from replay: moved %v sim %d, want moved %v sim %d",
					seed, cfg, fast.Moved, fast.SimulatedCycles, slow.Moved, slow.SimulatedCycles)
			}
		}
	}
}

// TestSimPropertyMonolithicIdentity pins the multi-region model's backward
// compatibility: WithRegions(1) is the legacy single-context platform, not a
// near miss — identical chosen mapping, identical makespans, byte-identical
// SimReport JSON against an engine that never mentions regions.
func TestSimPropertyMonolithicIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	reportJSON := func(opts []Option) []byte {
		eng, err := NewEngine(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.SimulateProfiled(context.Background(), app, prof)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	rng := rand.New(rand.NewSource(propertySeeds[0]))
	for i := 0; i < 3; i++ {
		cfg := drawConfig(rng)
		cfg.regions = 1
		t.Logf("draw=%d %s", i, cfg)
		legacy := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
		mono := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated), WithRegions(1))...)
		if fmt.Sprint(mono.Moved) != fmt.Sprint(legacy.Moved) ||
			mono.FinalCycles != legacy.FinalCycles ||
			mono.SimulatedCycles != legacy.SimulatedCycles {
			t.Fatalf("%s: Regions=1 diverges from legacy: moved %v final %d sim %d, want moved %v final %d sim %d",
				cfg, mono.Moved, mono.FinalCycles, mono.SimulatedCycles,
				legacy.Moved, legacy.FinalCycles, legacy.SimulatedCycles)
		}
		legacyRep := reportJSON(cfg.engineOpts(WithObjective(ObjectiveSimulated)))
		monoRep := reportJSON(cfg.engineOpts(WithObjective(ObjectiveSimulated), WithRegions(1)))
		if !bytes.Equal(monoRep, legacyRep) {
			t.Fatalf("%s: Regions=1 SimReport differs from legacy:\n%s\nvs\n%s", cfg, monoRep, legacyRep)
		}
	}
}

// TestSweepSimGoldenDeterministic is the sweep regression golden: a fixed
// small grid with sim axes emits byte-identical JSON and CSV across repeated
// runs and across worker counts.
func TestSweepSimGoldenDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	spec := SweepSpec{
		Benchmarks: []string{BenchOFDM},
		Areas:      []int{1500},
		Frames:     []int{1, 4},
		Objectives: []string{"model", "sim"},
		Seed:       1,
	}
	var goldenJSON, goldenCSV []byte
	for _, workers := range []int{1, 4, 1} {
		spec.Workers = workers
		eng, err := NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		rs, err := eng.Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		// The emitted spec echoes the requested worker count, which is the
		// one field allowed to differ: the data must not.
		rs.Spec.Workers = 0
		var jsonBuf, csvBuf bytes.Buffer
		if err := rs.WriteJSON(&jsonBuf); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if goldenJSON == nil {
			goldenJSON, goldenCSV = jsonBuf.Bytes(), csvBuf.Bytes()
			for i, o := range rs.Outcomes {
				if !o.Simulated || o.SimCycles == 0 {
					t.Fatalf("outcome %d not simulated: %+v", i, o)
				}
			}
			continue
		}
		if !bytes.Equal(jsonBuf.Bytes(), goldenJSON) {
			t.Fatalf("workers=%d: JSON diverged:\n%s\nvs\n%s", workers, jsonBuf.Bytes(), goldenJSON)
		}
		if !bytes.Equal(csvBuf.Bytes(), goldenCSV) {
			t.Fatalf("workers=%d: CSV diverged:\n%s\nvs\n%s", workers, csvBuf.Bytes(), goldenCSV)
		}
	}
}

// TestSweepSimPartialCancel: cancelling a sim-axis sweep mid-grid still
// returns only completed cells (in expansion order, marked partial) and
// never reports the cancellation as a per-cell failure.
func TestSweepSimPartialCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var eng *Engine
	var err error
	eng, err = NewEngine(WithObserver(func(ev Event) {
		if ce, ok := ev.(CellEvent); ok && ce.Done == 2 {
			cancel() // stop after two reported cells
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := eng.Sweep(ctx, SweepSpec{
		Benchmarks: []string{BenchOFDM},
		Areas:      []int{1000, 1500, 2200, 3000, 5000},
		Frames:     []int{2},
		Objectives: []string{"model", "sim"},
		Seed:       1,
		Workers:    1,
	})
	if err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v", err)
	}
	if rs == nil || !rs.Partial {
		t.Fatalf("cancelled sweep did not return a partial result set: %+v", rs)
	}
	if len(rs.Outcomes) >= 10 {
		t.Fatalf("partial sweep reports the full grid (%d cells)", len(rs.Outcomes))
	}
	for i, o := range rs.Outcomes {
		if o.Failed() {
			t.Fatalf("cell %d reports the cancellation as a failure: %s", i, o.Err)
		}
		if o.Index != rs.Outcomes[0].Index+i {
			t.Fatalf("partial outcomes out of expansion order: %+v", rs.Outcomes)
		}
	}
}

// TestSimPropertyParallelEquivalence is the tentpole determinism pin: the
// batched, parallel, branch-and-bound scorer must choose byte-for-byte the
// same partition as the PR-5 serial path for every worker count. The serial
// reference runs with debugSerialScoring (no batch argmin, no pruning);
// each worker count then runs the live path, and the chosen mapping,
// trajectory, analytical cycles, simulated makespan and the full SimReport
// JSON must be identical. Scheduling-dependent counters (Pruned/Parallel/
// Scored) are deliberately excluded — they are diagnostics, not results.
func TestSimPropertyParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	reportJSON := func(cfg propertyConfig, res *Result) []byte {
		eng, err := NewEngine(cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.SimulateProfiled(context.Background(), app, prof)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			cfg := drawConfig(rng)
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			debugSerialScoring = true
			ref := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			debugSerialScoring = false
			refRep := reportJSON(cfg, ref)
			for _, workers := range []int{1, 2, 4, 8} {
				got := partitionWith(t, app, prof,
					cfg.engineOpts(WithObjective(ObjectiveSimulated), WithWorkers(workers))...)
				if fmt.Sprint(got.Moved) != fmt.Sprint(ref.Moved) ||
					got.FinalCycles != ref.FinalCycles ||
					got.SimulatedCycles != ref.SimulatedCycles {
					t.Fatalf("seed=%d %s workers=%d: moved %v final %d sim %d, want moved %v final %d sim %d",
						seed, cfg, workers, got.Moved, got.FinalCycles, got.SimulatedCycles,
						ref.Moved, ref.FinalCycles, ref.SimulatedCycles)
				}
				if rep := reportJSON(cfg, got); !bytes.Equal(rep, refRep) {
					t.Fatalf("seed=%d %s workers=%d: SimReport diverges:\n%s\nvs\n%s",
						seed, cfg, workers, rep, refRep)
				}
			}
		}
	}
}

// TestSimPropertyPruningPreservesArgmin pins the branch-and-bound layer:
// with pruning disabled (every candidate fully replayed) the move loop must
// choose the same partition with the same makespan as the pruned run — the
// lower bound may only skip candidates that provably cannot win, and ties
// on the minimum are never pruned, so the index tie-break survives. The
// test also requires pruning to actually fire somewhere across the draws;
// a bound too weak to ever prune would pass the equivalence vacuously.
func TestSimPropertyPruningPreservesArgmin(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	totalPruned := 0
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			cfg := drawConfig(rng)
			if cfg.frames == 1 && !cfg.prefetch {
				cfg.frames = 4 // the single-frame fast path never prunes; force the replay regime
			}
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			pruned := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			totalPruned += pruned.SimStats.Pruned
			debugDisablePruning = true
			full := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			debugDisablePruning = false
			if full.SimStats.Pruned != 0 {
				t.Fatalf("seed=%d %s: pruning fired while disabled: %+v", seed, cfg, full.SimStats)
			}
			if fmt.Sprint(pruned.Moved) != fmt.Sprint(full.Moved) ||
				pruned.SimulatedCycles != full.SimulatedCycles ||
				pruned.FinalCycles != full.FinalCycles {
				t.Fatalf("seed=%d %s: pruning changed the argmin: moved %v sim %d, want moved %v sim %d",
					seed, cfg, pruned.Moved, pruned.SimulatedCycles, full.Moved, full.SimulatedCycles)
			}
		}
	}
	if totalPruned == 0 {
		t.Error("no draw pruned a single candidate — the lower bound never bit")
	}
	t.Logf("pruned %d candidate replays across all draws", totalPruned)
}

// TestSimPropertyBoundNeverExceedsScore checks admissibility end to end at
// the engine layer: on pruned runs the chosen minimum is a real replayed
// score, so if the bound ever overestimated, some run above would have
// pruned the winner and TestSimPropertyPruningPreservesArgmin would fail.
// This test adds the direct form: re-running the chosen mapping through the
// simulator never beats the loop's reported makespan (the bound-driven
// search still returned the true candidate-set minimum, not an artifact of
// skipped work).
func TestSimPropertyBoundNeverExceedsScore(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range propertySeeds {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			cfg := drawConfig(rng)
			t.Logf("seed=%d draw=%d %s", seed, i, cfg)
			res := partitionWith(t, app, prof, cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			eng, err := NewEngine(cfg.engineOpts(WithObjective(ObjectiveSimulated))...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.SimulateProfiled(context.Background(), app, prof)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalCycles != res.SimulatedCycles {
				t.Fatalf("seed=%d %s: loop reported %d but replaying its mapping measures %d",
					seed, cfg, res.SimulatedCycles, rep.TotalCycles)
			}
		}
	}
}
